(* Online-fitted statistical cost model over schedule features.

   Ridge regression on standardized features predicting log(seconds): the
   log target turns the multiplicative structure of execution time (trip
   counts x per-trip cost) into something a linear model represents well,
   and makes the loss scale-free across layers whose absolute times differ
   by orders of magnitude. The fit is closed-form (normal equations with
   Tikhonov damping) over every sample observed so far — at feature width
   ~24 and a few hundred measurements per tune, refitting after each batch
   costs microseconds, so there is no incremental-update machinery to get
   subtly wrong.

   Everything is deterministic: same samples in the same order, same
   weights. *)

let format_version = 1

type weights = { w_mean : float array; w_scale : float array; w_coef : float array }

type t = {
  dim : int;
  mutable samples : (float array * float) list;  (* (features, log seconds), newest first *)
  mutable fitted : weights option;  (* None until [fit] succeeds *)
  warm : weights option;  (* transfer prior: used until the first fit *)
}

let create ?warm ~dim () =
  if dim <= 0 then invalid_arg "Learned_model.create: non-positive dimension";
  let warm =
    match warm with
    | Some w when Array.length w.w_mean = dim && Array.length w.w_scale = dim
                  && Array.length w.w_coef = dim + 1 ->
      Some w
    | _ -> None
  in
  { dim; samples = []; fitted = None; warm }

let dim t = t.dim
let count t = List.length t.samples

let observe t features seconds =
  if Array.length features <> t.dim then
    invalid_arg "Learned_model.observe: feature width mismatch";
  if seconds > 0.0 && Float.is_finite seconds then
    t.samples <- (Array.copy features, log seconds) :: t.samples

let active t = match t.fitted with Some w -> Some w | None -> t.warm

let predict_with w features =
  let d = Array.length w.w_mean in
  let acc = ref w.w_coef.(d) in
  for i = 0 to d - 1 do
    acc := !acc +. (w.w_coef.(i) *. ((features.(i) -. w.w_mean.(i)) /. w.w_scale.(i)))
  done;
  exp !acc

let predict t features =
  if Array.length features <> t.dim then
    invalid_arg "Learned_model.predict: feature width mismatch";
  match active t with None -> None | Some w -> Some (predict_with w features)

let fitted t = active t <> None

(* Minimum samples before fitting: below this the normal equations are
   wildly underdetermined and the damped solution is pure noise. *)
let min_samples = 4

let fit ?(ridge = 1e-2) t =
  let n = List.length t.samples in
  if n >= min_samples then begin
    let d = t.dim in
    let xs = Array.of_list (List.rev_map fst t.samples) in
    let ys = Array.of_list (List.rev_map snd t.samples) in
    let mean = Array.make d 0.0 and scale = Array.make d 0.0 in
    Array.iter (fun f -> Array.iteri (fun i v -> mean.(i) <- mean.(i) +. v) f) xs;
    Array.iteri (fun i s -> mean.(i) <- s /. float_of_int n) mean;
    ignore scale;
    Array.iter
      (fun f ->
        Array.iteri (fun i v -> scale.(i) <- scale.(i) +. ((v -. mean.(i)) ** 2.0)) f)
      xs;
    Array.iteri
      (fun i s ->
        let sd = sqrt (s /. float_of_int n) in
        scale.(i) <- (if sd > 1e-9 then sd else 1.0))
      scale;
    (* Normal equations over [z; 1] with ridge on every weight but the
       intercept (the intercept absorbs the mean log-time and must not be
       shrunk toward zero). *)
    let cols = d + 1 in
    let z r i = if i = d then 1.0 else (xs.(r).(i) -. mean.(i)) /. scale.(i) in
    let xtx = Array.make_matrix cols cols 0.0 and xty = Array.make cols 0.0 in
    for r = 0 to n - 1 do
      for i = 0 to cols - 1 do
        let zi = z r i in
        xty.(i) <- xty.(i) +. (zi *. ys.(r));
        for j = 0 to cols - 1 do
          xtx.(i).(j) <- xtx.(i).(j) +. (zi *. z r j)
        done
      done
    done;
    for i = 0 to d - 1 do
      xtx.(i).(i) <- xtx.(i).(i) +. (ridge *. float_of_int n)
    done;
    xtx.(d).(d) <- xtx.(d).(d) +. 1e-9;
    match Prelude.Linsolve.solve xtx xty with
    | coef -> t.fitted <- Some { w_mean = mean; w_scale = scale; w_coef = coef }
    | exception Failure _ -> ()  (* singular despite damping: keep the previous weights *)
  end

let rmse_log t =
  match (active t, t.samples) with
  | None, _ | _, [] -> 0.0
  | Some w, samples ->
    let n = List.length samples in
    let sse =
      List.fold_left
        (fun acc (f, ly) ->
          let e = log (predict_with w f) -. ly in
          acc +. (e *. e))
        0.0 samples
    in
    sqrt (sse /. float_of_int n)

let weights t = active t

(* ------------------------------------------------------------------ *)
(* Serialization: a single line of space-separated tokens, so a weight
   vector embeds directly in the line-oriented schedule-cache format. *)

let weights_to_string w =
  let d = Array.length w.w_mean in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "lm%d %d" format_version d);
  let emit a = Array.iter (fun v -> Buffer.add_string buf (Printf.sprintf " %.17g" v)) a in
  emit w.w_mean;
  emit w.w_scale;
  emit w.w_coef;
  Buffer.contents buf

let weights_of_string s =
  match String.split_on_char ' ' (String.trim s) with
  | magic :: dim_s :: rest when magic = Printf.sprintf "lm%d" format_version -> (
    match int_of_string_opt dim_s with
    | Some d when d > 0 && List.length rest = (3 * d) + 1 -> (
      let vals = List.map float_of_string_opt rest in
      if List.exists Option.is_none vals then None
      else
        let arr = Array.of_list (List.map Option.get vals) in
        let ok = Array.for_all Float.is_finite arr in
        let scale = Array.sub arr d d in
        if ok && Array.for_all (fun v -> v > 0.0) scale then
          Some
            {
              w_mean = Array.sub arr 0 d;
              w_scale = scale;
              w_coef = Array.sub arr (2 * d) (d + 1);
            }
        else None)
    | _ -> None)
  | _ -> None
