(** Fixed-width numeric features of a candidate schedule's IR.

    One analytic walk per program — loops visited once at their midpoint
    iterate, accumulations weighted by trip counts — yields a {!dim}-wide
    vector: loop structure, DMA descriptor geometry and byte volumes, GEMM
    tile extents and kernel-variant mix, SPM footprint, repack/memset
    volumes and arithmetic intensity. Magnitudes are [log1p]-compressed so
    a linear model over them behaves like a power law over the raw counts.

    Extraction is {e total}: it never raises on any program the candidate
    generators emit (including ones {!Ir_verify} would reject) and always
    returns exactly {!dim} finite values — the guided tuner featurizes every
    generated candidate before any of them is verified or measured. *)

val dim : int
(** Width of every feature vector. *)

val names : string list
(** Human-readable feature names, index-aligned with {!of_program}'s
    result; [List.length names = dim]. *)

val of_program : Ir.program -> float array
(** Extract the feature vector. Works on any structurally well-formed
    program; DMA inference need not have run (per-CPE descriptors are not
    consulted), but the usual pipeline featurizes the optimized program the
    tuner would also measure. *)
