(** Deterministic retry policy: capped exponential backoff with seeded
    jitter.

    A transient fault — an injected DMA glitch, a flaky kernel launch —
    is usually cheaper to retry in place than to abandon for a slower
    fallback implementation. This module only computes {e how long} to
    back off; the retry loops themselves live at the call sites
    ({!Swatop_graph.Graph_exec} retries a failing implementation before
    walking its degradation chain, {!Serve_shard} re-dispatches failed
    batches), because what "retry" means differs per site.

    Every delay is a pure function of (policy, site, key, attempt) via
    {!Det_rng} — no stream state — so a retried run replays bit-identically
    at any host job count, and backoff seconds are virtual-clock currency
    that the serving simulator can charge honestly. *)

type policy = {
  r_attempts : int;  (** max attempts per call site, including the first, >= 1 *)
  r_base : float;  (** backoff before the 2nd attempt, seconds *)
  r_cap : float;  (** upper bound on any single backoff, seconds *)
  r_jitter : float;  (** relative jitter amplitude in [0, 1]: delay scales by [1 +- jitter/2] *)
  r_seed : int;  (** jitter randomness root *)
  r_budget : int;  (** total retries allowed per scope (e.g. one graph execution), >= 0 *)
}

val default : policy
(** 3 attempts, 0.1 ms base doubling to a 2 ms cap, 50% jitter, seed 7,
    16 retries per scope. The base is commensurate with one smoke-network
    inference so retried requests feel the delay in their latency. *)

val validate : policy -> unit
(** Raises [Invalid_argument] when a field is out of range. *)

val delay : policy -> site:string -> key:int -> attempt:int -> float
(** Backoff (seconds) to charge before attempt [attempt + 1], given that
    attempt [attempt >= 1] just failed: [min cap (base * 2^(attempt-1))]
    scaled by the jitter draw for (site, key, attempt). Deterministic. *)

val budget : policy -> int ref
(** A fresh per-scope retry allowance: [r_budget] retries, to be
    decremented by the call site's loop. *)
