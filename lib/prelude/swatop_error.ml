type t = { site : string; message : string; context : (string * string) list }

exception Error of t

let to_string e =
  let ctx =
    match e.context with
    | [] -> ""
    | l -> Printf.sprintf " [%s]" (String.concat "; " (List.map (fun (k, v) -> k ^ "=" ^ v) l))
  in
  Printf.sprintf "%s: %s%s" e.site e.message ctx

let () =
  Printexc.register_printer (function Error e -> Some ("Swatop_error " ^ to_string e) | _ -> None)

let error ~site ?(context = []) message = raise (Error { site; message; context })

let errorf ~site ?context fmt = Printf.ksprintf (fun message -> error ~site ?context message) fmt

let of_exn ~site = function
  | Error e -> Error e
  | e -> Error { site; message = Printexc.to_string e; context = [] }

(* A short, stable histogram label for an exception — incident reports and
   tuning-failure counts bucket by it. *)
let label = function
  | Fault.Injected { site; _ } -> "fault:" ^ site
  | Error e -> e.site
  | Invalid_argument m | Failure m -> (
    (* Keep the conventional "Module.fn:" prefix, drop the free-form tail. *)
    match String.index_opt m ':' with Some i -> String.sub m 0 i | None -> m)
  | e -> Printexc.to_string e
