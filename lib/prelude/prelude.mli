(** Small shared utilities used across the swATOP reproduction.

    Everything here is deterministic; the only external dependencies are
    [Unix] (for the wall clock) and the OCaml 5 Domain runtime (for the
    {!Parallel} pool). *)

(** Integer helpers. *)
module Ints : sig
  val ceil_div : int -> int -> int
  (** [ceil_div a b] is [a / b] rounded towards positive infinity.
      Requires [b > 0] and [a >= 0]. *)

  val align_up : int -> int -> int
  (** [align_up x a] is the smallest multiple of [a] that is [>= x]. *)

  val align_down : int -> int -> int
  (** [align_down x a] is the largest multiple of [a] that is [<= x]. *)

  val clamp : lo:int -> hi:int -> int -> int

  val pow : int -> int -> int
  (** [pow b e] for [e >= 0]. *)

  val divisors : int -> int list
  (** All positive divisors of [n], ascending. Requires [n > 0]. *)
end

(** List helpers. *)
module Lists : sig
  val range : int -> int -> int list
  (** [range lo hi] is [lo; lo+1; ...; hi-1]. *)

  val cartesian2 : 'a list -> 'b list -> ('a * 'b) list
  val cartesian3 : 'a list -> 'b list -> 'c list -> ('a * 'b * 'c) list

  val take_every : int -> 'a list -> 'a list
  (** [take_every n l] keeps elements at indices [0; n; 2n; ...]. *)

  val sum_float : ('a -> float) -> 'a list -> float
  val max_float_by : ('a -> float) -> 'a list -> 'a
  val min_float_by : ('a -> float) -> 'a list -> 'a

  val permutations : 'a list -> 'a list list
  (** All permutations; intended for short lists only. *)
end

(** Wall-clock timing. *)
module Clock : sig
  val wall : unit -> float
  (** Wall-clock seconds since the epoch ([Unix.gettimeofday]). Use this —
      never [Sys.time], which reports process CPU time and silently inflates
      under Domain parallelism — to time tuning phases. *)
end

(** Float helpers. *)
module Floats : sig
  val approx_equal : ?eps:float -> float -> float -> bool
  (** Relative-tolerance comparison, [eps] defaults to [1e-5]. *)

  val mean : float list -> float
  val geomean : float list -> float
end

(** Dense least-squares fitting of small linear models. *)
module Linsolve : sig
  val solve : float array array -> float array -> float array
  (** [solve a b] solves [a x = b] by Gaussian elimination with partial
      pivoting. Raises [Failure] if the system is singular. *)

  val least_squares : float array array -> float array -> float array
  (** [least_squares x y] returns coefficients [c] minimising
      [||x c - y||^2] via the normal equations. Rows of [x] are samples. *)
end

(** Re-export of the Domain-pool combinators (see [parallel.mli]). *)
module Parallel = Parallel

(** Re-export of the stateless deterministic hashing RNG (see [det_rng.mli]). *)
module Det_rng = Det_rng

(** Re-export of the deterministic fault-injection plan (see [fault.mli]). *)
module Fault = Fault

(** Re-export of the structured-error exception (see [swatop_error.mli]). *)
module Swatop_error = Swatop_error

(** Re-export of the quantile-keeping Welford accumulator (see
    [running_stat.mli]). *)
module Running_stat = Running_stat

(** Re-export of the deterministic retry/backoff policy (see [retry.mli]). *)
module Retry = Retry
