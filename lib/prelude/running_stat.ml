(* Welford's online mean/variance plus retained samples for quantiles.

   The accumulator part is numerically stable at any sample count (the
   bench harness reports stddev over a handful of wall-time samples
   without catastrophic cancellation). Samples are additionally retained
   in a growable array so the serving layer can report p50/p99 latency
   per request class; a serving run observes thousands of latencies, so
   whole-population retention is cheap and the percentiles are exact
   rather than sketched. *)

type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min : float;
  mutable max : float;
  mutable samples : float array;  (* first [n] slots are live *)
}

let create () =
  { n = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity; samples = [||] }

let add t x =
  if t.n = Array.length t.samples then begin
    let grown = Array.make (Stdlib.max 16 (2 * t.n)) 0.0 in
    Array.blit t.samples 0 grown 0 t.n;
    t.samples <- grown
  end;
  t.samples.(t.n) <- x;
  t.n <- t.n + 1;
  let d = x -. t.mean in
  t.mean <- t.mean +. (d /. float_of_int t.n);
  t.m2 <- t.m2 +. (d *. (x -. t.mean));
  if x < t.min then t.min <- x;
  if x > t.max then t.max <- x

let count t = t.n
let mean t = if t.n = 0 then 0.0 else t.mean
let stddev t = if t.n < 2 then 0.0 else sqrt (t.m2 /. float_of_int (t.n - 1))
let min t = if t.n = 0 then 0.0 else t.min
let max t = if t.n = 0 then 0.0 else t.max

(* Nearest-rank on the sorted retained samples: percentile p maps to the
   ceil(p/100 * n)-th smallest value. p50 of [1;2;3;4] is 2, p99 is 4. *)
let percentile t p =
  if t.n = 0 then 0.0
  else if p <= 0.0 then min t
  else if p >= 100.0 then max t
  else begin
    let sorted = Array.sub t.samples 0 t.n in
    Array.sort compare sorted;
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int t.n)) in
    sorted.(Stdlib.max 0 (Stdlib.min (t.n - 1) (rank - 1)))
  end
