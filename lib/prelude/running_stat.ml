(* Welford's online mean/variance plus retained samples for quantiles.

   The accumulator part is numerically stable at any sample count (the
   bench harness reports stddev over a handful of wall-time samples
   without catastrophic cancellation). Samples are additionally retained
   in a growable array so the serving layer can report p50/p99 latency
   per request class.

   Retention is whole-population by default — a serving run observes
   thousands of latencies, so the percentiles are exact rather than
   sketched. For long soaks that would grow memory without bound, a
   [~cap] turns retention into reservoir sampling (Vitter's Algorithm R,
   seeded through {!Det_rng} so the kept subset is a pure function of
   (seed, arrival index) and replays identically): mean/stddev/min/max
   stay exact, percentiles become a uniform-sample estimate once the
   population exceeds the cap. *)

type t = {
  cap : int;  (* retention bound; max_int = retain everything *)
  seed : int;
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min : float;
  mutable max : float;
  mutable samples : float array;  (* first [retained] slots are live *)
}

let site = "running_stat.reservoir"

let create ?(cap = max_int) ?(seed = 7) () =
  if cap < 1 then invalid_arg (Printf.sprintf "Running_stat.create: cap must be >= 1, got %d" cap);
  { cap; seed; n = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity; samples = [||] }

let retained t = Stdlib.min t.n t.cap

let add t x =
  let kept = retained t in
  if kept < t.cap then begin
    (* Still filling: grow geometrically, but never past the cap. *)
    if kept = Array.length t.samples then begin
      let grown =
        Array.make (Stdlib.min t.cap (Stdlib.max 16 (2 * kept))) 0.0
      in
      Array.blit t.samples 0 grown 0 kept;
      t.samples <- grown
    end;
    t.samples.(kept) <- x
  end
  else begin
    (* Algorithm R: the (n+1)-th observation replaces a random retained
       slot with probability cap/(n+1); the kept set is a uniform sample
       of everything seen. The draw is keyed on the arrival index, so the
       reservoir's contents are deterministic. *)
    let j = Det_rng.int ~seed:t.seed ~site ~k:t.n (t.n + 1) in
    if j < t.cap then t.samples.(j) <- x
  end;
  t.n <- t.n + 1;
  let d = x -. t.mean in
  t.mean <- t.mean +. (d /. float_of_int t.n);
  t.m2 <- t.m2 +. (d *. (x -. t.mean));
  if x < t.min then t.min <- x;
  if x > t.max then t.max <- x

let count t = t.n
let mean t = if t.n = 0 then 0.0 else t.mean
let stddev t = if t.n < 2 then 0.0 else sqrt (t.m2 /. float_of_int (t.n - 1))
let min t = if t.n = 0 then 0.0 else t.min
let max t = if t.n = 0 then 0.0 else t.max

(* Nearest-rank on the sorted retained samples: percentile p maps to the
   ceil(p/100 * n)-th smallest value. p50 of [1;2;3;4] is 2, p99 is 4. *)
let percentile t p =
  if t.n = 0 then 0.0
  else if p <= 0.0 then min t
  else if p >= 100.0 then max t
  else begin
    let live = retained t in
    let sorted = Array.sub t.samples 0 live in
    Array.sort compare sorted;
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int live)) in
    sorted.(Stdlib.max 0 (Stdlib.min (live - 1) (rank - 1)))
  end
