(* A fixed pool of worker domains shared by every parallel region in the
   process. Workers are spawned lazily on the first parallel call, grown up
   to the requested job count, and joined from an [at_exit] hook.

   Work is submitted in contiguous chunks so that callers can run an ordered
   sequential fold inside each chunk and merge the per-chunk results
   deterministically: every combinator here returns results in chunk order,
   independent of scheduling, so a parallel run is bit-compatible with a
   sequential one wherever the caller's merge is. *)

let max_jobs = 128

let override = Atomic.make None

let env_jobs () =
  match Sys.getenv_opt "SWATOP_JOBS" with
  | None -> None
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> Some (min n max_jobs)
    | _ -> None)

let jobs () =
  match Atomic.get override with
  | Some n -> n
  | None -> (
    match env_jobs () with
    | Some n -> n
    | None -> max 1 (min max_jobs (Domain.recommended_domain_count ())))

let set_jobs = function
  | Some n when n < 1 -> invalid_arg "Parallel.set_jobs: jobs must be positive"
  | Some n -> Atomic.set override (Some (min n max_jobs))
  | None -> Atomic.set override None

(* ------------------------------------------------------------------ *)
(* The pool. *)

type pool = {
  mutex : Mutex.t;
  has_work : Condition.t;
  tasks : (unit -> unit) Queue.t;
  mutable stop : bool;
  mutable size : int;
  mutable domains : unit Domain.t list;
}

let pool =
  {
    mutex = Mutex.create ();
    has_work = Condition.create ();
    tasks = Queue.create ();
    stop = false;
    size = 0;
    domains = [];
  }

let worker () =
  let rec loop () =
    Mutex.lock pool.mutex;
    let rec next () =
      if pool.stop then None
      else
        match Queue.take_opt pool.tasks with
        | Some t -> Some t
        | None ->
          Condition.wait pool.has_work pool.mutex;
          next ()
    in
    let task = next () in
    Mutex.unlock pool.mutex;
    match task with
    | None -> ()
    | Some task ->
      task ();
      loop ()
  in
  loop ()

let shutdown () =
  Mutex.lock pool.mutex;
  pool.stop <- true;
  Condition.broadcast pool.has_work;
  Mutex.unlock pool.mutex;
  List.iter Domain.join pool.domains;
  pool.domains <- [];
  pool.size <- 0;
  pool.stop <- false

let ensure_workers n =
  Mutex.lock pool.mutex;
  let register_exit = pool.size = 0 && n > 0 in
  while pool.size < n do
    pool.domains <- Domain.spawn worker :: pool.domains;
    pool.size <- pool.size + 1
  done;
  Mutex.unlock pool.mutex;
  if register_exit then at_exit shutdown

(* Runs every closure on the pool and blocks until all have finished. The
   first exception (in submission order of completion) is re-raised in the
   caller once the batch has drained. *)
let run_batch (fns : (unit -> unit) array) =
  let n = Array.length fns in
  if n > 0 then begin
    let batch_mutex = Mutex.create () in
    let finished = Condition.create () in
    let remaining = ref n in
    let first_exn = ref None in
    let wrap fn () =
      (try fn ()
       with e ->
         let bt = Printexc.get_raw_backtrace () in
         Mutex.lock batch_mutex;
         if Option.is_none !first_exn then first_exn := Some (e, bt);
         Mutex.unlock batch_mutex);
      Mutex.lock batch_mutex;
      decr remaining;
      if !remaining = 0 then Condition.signal finished;
      Mutex.unlock batch_mutex
    in
    Mutex.lock pool.mutex;
    Array.iter (fun fn -> Queue.add (wrap fn) pool.tasks) fns;
    Condition.broadcast pool.has_work;
    Mutex.unlock pool.mutex;
    Mutex.lock batch_mutex;
    while !remaining > 0 do
      Condition.wait finished batch_mutex
    done;
    Mutex.unlock batch_mutex;
    match !first_exn with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
  end

(* ------------------------------------------------------------------ *)
(* Chunked combinators. *)

(* Contiguous balanced chunks: the first [n mod chunks] chunks get one extra
   element, preserving order. *)
let chunk_bounds n chunks =
  let chunks = max 1 (min n chunks) in
  let base = n / chunks and extra = n mod chunks in
  List.init chunks (fun i ->
      let start = (i * base) + min i extra in
      let len = base + if i < extra then 1 else 0 in
      (start, len))

let map_chunks ?jobs:requested ~f arr =
  let n = Array.length arr in
  if n = 0 then []
  else begin
    let j = match requested with Some j -> max 1 j | None -> jobs () in
    (* Nested parallel regions (a worker calling back in) would deadlock the
       fixed pool; they degrade to sequential instead. *)
    if j <= 1 || n <= 1 || not (Domain.is_main_domain ()) then [ f 0 arr ]
    else begin
      ensure_workers j;
      (* A few chunks per worker keeps the tail balanced without shredding
         the caller's per-chunk fold state. *)
      let bounds = chunk_bounds n (j * 4) in
      let results = Array.make (List.length bounds) None in
      let tasks =
        List.mapi
          (fun i (start, len) () -> results.(i) <- Some (f start (Array.sub arr start len)))
          bounds
      in
      run_batch (Array.of_list tasks);
      Array.to_list
        (Array.map
           (function Some r -> r | None -> invalid_arg "Parallel.map_chunks: lost chunk")
           results)
    end
  end

let parallel_map ?jobs f l =
  let arr = Array.of_list l in
  map_chunks ?jobs ~f:(fun _ chunk -> Array.to_list (Array.map f chunk)) arr |> List.concat

(* Crash-isolated map: a raising element becomes [Error exn] in place while
   the rest of its chunk — and the pool — carry on. [run_batch]'s
   first-exception replay never triggers because the per-element closure
   cannot raise. *)
let try_parallel_map ?jobs f l =
  parallel_map ?jobs (fun x -> match f x with v -> Ok v | exception e -> Error e) l

let parallel_min_by ?jobs f l =
  if l = [] then invalid_arg "Parallel.parallel_min_by: empty list";
  let arr = Array.of_list l in
  let chunk_best _start chunk =
    let best = ref chunk.(0) and best_v = ref (f chunk.(0)) in
    for i = 1 to Array.length chunk - 1 do
      let v = f chunk.(i) in
      if v < !best_v then begin
        best := chunk.(i);
        best_v := v
      end
    done;
    (!best, !best_v)
  in
  match map_chunks ?jobs ~f:chunk_best arr with
  | [] -> assert false
  | (x0, v0) :: rest ->
    (* Strict [<] at both levels: the earliest occurrence wins ties, exactly
       as a sequential left-to-right scan would. *)
    fst (List.fold_left (fun (bx, bv) (x, v) -> if v < bv then (x, v) else (bx, bv)) (x0, v0) rest)
