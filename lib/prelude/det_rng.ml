(* Deterministic, stateless pseudo-randomness.

   Every draw is a pure function of (seed, site, k): a SplitMix64-style
   integer mix over a seed combined with an FNV-1a hash of a site string and
   a caller-chosen integer key. There is no hidden stream state, so the
   value a caller observes never depends on evaluation order, domain
   scheduling, or how work was chunked across a parallel pool — the property
   both the fault injector and the guided tuner's exploration lean on. *)

(* SplitMix64-style integer mix over OCaml's native int; only internal
   determinism matters, not bit-compatibility with any reference. *)
let mix a b =
  let h = ref (a lxor (b * 0x9e3779b97f4a7c1)) in
  h := (!h lxor (!h lsr 30)) * 0xbf58476d1ce4e5b;
  h := (!h lxor (!h lsr 27)) * 0x94d049bb133111e;
  !h lxor (!h lsr 31)

let fnv s =
  let h = ref 0x4bf29ce484222325 in
  String.iter (fun c -> h := (!h lxor Char.code c) * 0x100000001b3) s;
  !h

let hash ~seed ~site ~k = mix (mix seed (fnv site)) k land max_int

let uniform ~seed ~site ~k = float_of_int (hash ~seed ~site ~k) /. float_of_int max_int

let int ~seed ~site ~k n =
  if n <= 0 then invalid_arg "Det_rng.int: bound must be positive";
  hash ~seed ~site ~k mod n
