(** Structured failure for hot-path diagnostics.

    A bare [failwith]/[invalid_arg] in an operator or graph pass surfaces
    as an uncaught backtrace with no idea of which layer, buffer, or
    strategy was involved. [Swatop_error.Error] instead carries a stable
    site name (e.g. ["Graph_exec.layer"]) plus key/value context, which the
    incident reports and the CLI's exit-code-2 diagnostic render
    directly. *)

type t = {
  site : string;  (** stable dotted location, e.g. ["Dispatch.best"] *)
  message : string;
  context : (string * string) list;  (** e.g. [("layer", "c1"); ("algo", "winograd")] *)
}

exception Error of t

val error : site:string -> ?context:(string * string) list -> string -> 'a
(** Raise {!Error}. *)

val errorf :
  site:string -> ?context:(string * string) list -> ('a, unit, string, 'b) format4 -> 'a
(** [Printf]-style {!error}. *)

val to_string : t -> string
(** ["site: message [k=v; k=v]"]. Also registered as the [Printexc]
    printer for {!Error}. *)

val of_exn : site:string -> exn -> exn
(** Wrap a foreign exception as an {!Error} at [site] (already-structured
    errors pass through unchanged). *)

val label : exn -> string
(** A short, stable bucket label for failure histograms: fault injections
    become ["fault:<site>"], structured errors their site, and
    [Invalid_argument]/[Failure] keep their conventional ["Module.fn"]
    prefix only. *)
