(** Deterministic, process-wide fault injection.

    A fault plan is a seed plus per-site trigger rules. Resilience-critical
    code calls {!check} at named fault sites ("tuner.score",
    "interp.dma.wait", "cache.load", "graph.copy", ...); when the active
    plan's rule for a site fires, {!Injected} is raised at that site. Every
    trigger is a pure function of (seed, site, hit number or caller key),
    so a fixed plan yields an identical fault schedule on every run.

    Plans come from the [SWATOP_FAULTS] environment variable (installed at
    module initialization) or a [--faults] CLI flag via {!parse} + {!set}.
    Spec grammar, fields separated by [;] or [,]:

    {v seed=42;tuner.score:p=0.1;interp.dma.wait:n=3;cache.*:always v}

    Triggers: [p=F] (each hit fails with probability F — give {!check} a
    [~key] where hits race across domains, the decision then depends only
    on the key), [n=K] (exactly the K-th hit), [every=K], [first=K]
    (hits 1..K), [key=K] (hits whose caller key is K), [always]. A
    trailing [*] in a site is a prefix wildcard. *)

type trigger =
  | Probability of float
  | Nth of int
  | Every of int
  | First of int
  | Key of int

type rule = { r_site : string; r_trigger : trigger }
type plan = { seed : int; rules : rule list }

exception Injected of { site : string; hit : int }
(** The injected failure; [hit] is the 1-based per-site check count at
    which it fired. Carries no resources — always safe to catch. *)

val parse : string -> (plan, string) result
val to_string : plan -> string

val set : plan option -> unit
(** Install (or clear) the process-wide plan; hit counters start fresh. *)

val reset : unit -> unit
(** Zero the hit counters of the active plan (same plan, fresh schedule). *)

val active : unit -> bool
val plan : unit -> plan option

val check : ?key:int -> string -> unit
(** [check site] raises {!Injected} when the active plan fires at [site];
    a no-op (one atomic load) when no plan is installed or no rule matches.
    [?key] replaces the hit number in [p=]/[key=] decisions, making them
    independent of cross-domain scheduling order. *)

val injected : unit -> (string * int) list
(** Per-site counts of faults raised so far, sorted by site. *)
