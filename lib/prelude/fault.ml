(* Deterministic, process-wide fault injection.

   A fault plan is a seed plus a list of site rules. Code under test calls
   [check site] at named fault sites; when the active plan's rule for that
   site fires, an [Injected] exception is raised there. Every trigger is a
   pure function of (seed, site, hit number | caller key), so a fixed plan
   produces the same fault schedule on every run — the property the
   resilience tests lean on. Probability rules should be given a [~key]
   wherever hits can race across domains (e.g. the candidate index in the
   parallel tuner): the decision then depends on the key alone, never on
   scheduling order. *)

type trigger =
  | Probability of float  (** p=F: each hit fails independently *)
  | Nth of int  (** n=K: exactly the K-th hit fails (1-based) *)
  | Every of int  (** every=K: hits K, 2K, 3K, ... fail *)
  | First of int  (** first=K: hits 1..K fail *)
  | Key of int  (** key=K: hits carrying caller key K fail (hit number when no key) *)

type rule = { r_site : string; r_trigger : trigger }

type plan = { seed : int; rules : rule list }

exception Injected of { site : string; hit : int }

let () =
  Printexc.register_printer (function
    | Injected { site; hit } ->
      Some (Printf.sprintf "Fault.Injected(site %s, hit %d)" site hit)
    | _ -> None)

(* ------------------------------------------------------------------ *)
(* Spec parsing: "seed=42;tuner.score:p=0.1;interp.dma.wait:n=3".
   Separators ';' or ','; triggers p=F | n=K | every=K | first=K | key=K |
   always. A trailing '*' in a site makes it a prefix wildcard. *)

let trigger_to_string = function
  | Probability p -> Printf.sprintf "p=%g" p
  | Nth k -> Printf.sprintf "n=%d" k
  | Every k -> Printf.sprintf "every=%d" k
  | First k -> Printf.sprintf "first=%d" k
  | Key k -> Printf.sprintf "key=%d" k

let to_string plan =
  String.concat ";"
    (Printf.sprintf "seed=%d" plan.seed
    :: List.map (fun r -> Printf.sprintf "%s:%s" r.r_site (trigger_to_string r.r_trigger)) plan.rules)

let parse_trigger s =
  let int_arg name v k =
    match int_of_string_opt v with
    | Some i when i >= 1 -> Ok (k i)
    | _ -> Error (Printf.sprintf "%s expects a positive integer, got %S" name v)
  in
  match String.index_opt s '=' with
  | None -> if s = "always" then Ok (Probability 1.0) else Error (Printf.sprintf "unknown trigger %S" s)
  | Some i -> (
    let name = String.sub s 0 i and v = String.sub s (i + 1) (String.length s - i - 1) in
    match name with
    | "p" -> (
      match float_of_string_opt v with
      | Some p when p >= 0.0 && p <= 1.0 -> Ok (Probability p)
      | _ -> Error (Printf.sprintf "p expects a probability in [0,1], got %S" v))
    | "n" -> int_arg "n" v (fun k -> Nth k)
    | "every" -> int_arg "every" v (fun k -> Every k)
    | "first" -> int_arg "first" v (fun k -> First k)
    | "key" -> (
      match int_of_string_opt v with
      | Some k when k >= 0 -> Ok (Key k)
      | _ -> Error (Printf.sprintf "key expects a non-negative integer, got %S" v))
    | _ -> Error (Printf.sprintf "unknown trigger %S" name))

let parse spec =
  let fields =
    String.split_on_char ';' spec
    |> List.concat_map (String.split_on_char ',')
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let rec loop seed rules = function
    | [] ->
      if rules = [] then Error "fault spec names no sites"
      else Ok { seed; rules = List.rev rules }
    | f :: rest -> (
      match String.index_opt f ':' with
      | None -> (
        (* seed=N, or a bare site meaning "always". *)
        match String.index_opt f '=' with
        | Some i when String.sub f 0 i = "seed" -> (
          let v = String.sub f (i + 1) (String.length f - i - 1) in
          match int_of_string_opt v with
          | Some s -> loop s rules rest
          | None -> Error (Printf.sprintf "seed expects an integer, got %S" v))
        | Some _ -> Error (Printf.sprintf "malformed field %S (expected site:trigger)" f)
        | None -> loop seed ({ r_site = f; r_trigger = Probability 1.0 } :: rules) rest)
      | Some i -> (
        let site = String.sub f 0 i and t = String.sub f (i + 1) (String.length f - i - 1) in
        if site = "" then Error (Printf.sprintf "empty site in %S" f)
        else
          match parse_trigger (String.trim t) with
          | Ok trigger -> loop seed ({ r_site = site; r_trigger = trigger } :: rules) rest
          | Error e -> Error e))
  in
  loop 0 [] fields

(* ------------------------------------------------------------------ *)
(* Active plan + per-site hit counters. The fast path (no plan installed)
   is a single atomic load; counters are mutex-guarded because fault sites
   run on worker domains. *)

type state = {
  st_plan : plan;
  st_mutex : Mutex.t;
  st_hits : (string, int) Hashtbl.t;  (** per-site check calls *)
  st_injected : (string, int) Hashtbl.t;  (** per-site raised faults *)
}

let current : state option Atomic.t = Atomic.make None

let set = function
  | None -> Atomic.set current None
  | Some plan ->
    Atomic.set current
      (Some
         {
           st_plan = plan;
           st_mutex = Mutex.create ();
           st_hits = Hashtbl.create 8;
           st_injected = Hashtbl.create 8;
         })

let reset () =
  match Atomic.get current with None -> () | Some st -> set (Some st.st_plan)

let active () = Atomic.get current <> None

let plan () = Option.map (fun st -> st.st_plan) (Atomic.get current)

let sorted_counts tbl =
  Hashtbl.fold (fun site n acc -> (site, n) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let injected () =
  match Atomic.get current with None -> [] | Some st ->
    Mutex.lock st.st_mutex;
    let l = sorted_counts st.st_injected in
    Mutex.unlock st.st_mutex;
    l

let uniform = Det_rng.uniform

let matches rule site =
  let r = rule.r_site in
  let n = String.length r in
  if n > 0 && r.[n - 1] = '*' then
    let prefix = String.sub r 0 (n - 1) in
    String.length site >= String.length prefix
    && String.sub site 0 (String.length prefix) = prefix
  else String.equal r site

let fires ~seed rule ~site ~hit ~key =
  match rule.r_trigger with
  | Probability p ->
    p >= 1.0 || uniform ~seed ~site ~k:(Option.value key ~default:hit) < p
  | Nth k -> hit = k
  | Every k -> hit mod k = 0
  | First k -> hit <= k
  | Key k -> Option.value key ~default:hit = k

let check ?key site =
  match Atomic.get current with
  | None -> ()
  | Some st ->
    let rules = List.filter (fun r -> matches r site) st.st_plan.rules in
    if rules <> [] then begin
      Mutex.lock st.st_mutex;
      let hit = 1 + Option.value ~default:0 (Hashtbl.find_opt st.st_hits site) in
      Hashtbl.replace st.st_hits site hit;
      let fired = List.exists (fun r -> fires ~seed:st.st_plan.seed r ~site ~hit ~key) rules in
      if fired then
        Hashtbl.replace st.st_injected site
          (1 + Option.value ~default:0 (Hashtbl.find_opt st.st_injected site));
      Mutex.unlock st.st_mutex;
      if fired then raise (Injected { site; hit })
    end

(* The environment plan, installed at module initialization so library code
   (tests, bench, CLI) picks it up without explicit wiring. A CLI [--faults]
   simply calls [set] afterwards and overrides it. *)
let () =
  match Sys.getenv_opt "SWATOP_FAULTS" with
  | None | Some "" -> ()
  | Some spec -> (
    match parse spec with
    | Ok p -> set (Some p)
    | Error e -> Printf.eprintf "swatop: ignoring SWATOP_FAULTS: %s\n%!" e)
