type policy = {
  r_attempts : int;
  r_base : float;
  r_cap : float;
  r_jitter : float;
  r_seed : int;
  r_budget : int;
}

let default =
  { r_attempts = 3; r_base = 1e-4; r_cap = 2e-3; r_jitter = 0.5; r_seed = 7; r_budget = 16 }

let validate p =
  if p.r_attempts < 1 then
    invalid_arg (Printf.sprintf "Retry: attempts must be >= 1, got %d" p.r_attempts);
  if p.r_base < 0.0 || not (Float.is_finite p.r_base) then
    invalid_arg (Printf.sprintf "Retry: base must be >= 0, got %g" p.r_base);
  if p.r_cap < p.r_base then
    invalid_arg (Printf.sprintf "Retry: cap %g below base %g" p.r_cap p.r_base);
  if p.r_jitter < 0.0 || p.r_jitter > 1.0 then
    invalid_arg (Printf.sprintf "Retry: jitter must be in [0, 1], got %g" p.r_jitter);
  if p.r_budget < 0 then
    invalid_arg (Printf.sprintf "Retry: budget must be >= 0, got %d" p.r_budget)

(* Exponential growth capped per delay; the jitter draw is keyed on
   (site, key, attempt) so two sites retrying at the same moment never
   share a backoff and thundering herds de-synchronize — yet the whole
   schedule is replayable from the seed. *)
let delay p ~site ~key ~attempt =
  if attempt < 1 then invalid_arg (Printf.sprintf "Retry.delay: attempt must be >= 1, got %d" attempt);
  let raw = p.r_base *. Float.pow 2.0 (float_of_int (attempt - 1)) in
  let capped = Float.min p.r_cap raw in
  let u = Det_rng.uniform ~seed:p.r_seed ~site ~k:(Det_rng.mix key attempt) in
  capped *. (1.0 +. (p.r_jitter *. (u -. 0.5)))

let budget p = ref p.r_budget
