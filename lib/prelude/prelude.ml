module Ints = struct
  let ceil_div a b =
    assert (b > 0 && a >= 0);
    (a + b - 1) / b

  let align_up x a = ceil_div x a * a
  let align_down x a = x / a * a
  let clamp ~lo ~hi x = if x < lo then lo else if x > hi then hi else x

  let pow b e =
    assert (e >= 0);
    let rec loop acc e = if e = 0 then acc else loop (acc * b) (e - 1) in
    loop 1 e

  let divisors n =
    assert (n > 0);
    let rec loop d acc = if d > n then List.rev acc else loop (d + 1) (if n mod d = 0 then d :: acc else acc) in
    loop 1 []
end

module Lists = struct
  let range lo hi =
    let rec loop i acc = if i < lo then acc else loop (i - 1) (i :: acc) in
    loop (hi - 1) []

  let cartesian2 xs ys = List.concat_map (fun x -> List.map (fun y -> (x, y)) ys) xs

  let cartesian3 xs ys zs =
    List.concat_map (fun x -> List.concat_map (fun y -> List.map (fun z -> (x, y, z)) zs) ys) xs

  let take_every n l =
    assert (n > 0);
    List.filteri (fun i _ -> i mod n = 0) l

  let sum_float f l = List.fold_left (fun acc x -> acc +. f x) 0.0 l

  let extremum_by better f = function
    | [] -> invalid_arg "extremum_by: empty list"
    | x :: rest ->
      let pick (bx, bv) y =
        let v = f y in
        if better v bv then (y, v) else (bx, bv)
      in
      fst (List.fold_left pick (x, f x) rest)

  let max_float_by f l = extremum_by ( > ) f l
  let min_float_by f l = extremum_by ( < ) f l

  let rec permutations = function
    | [] -> [ [] ]
    | l ->
      List.concat_map
        (fun x ->
          let rest = List.filter (fun y -> not (y == x)) l in
          List.map (fun p -> x :: p) (permutations rest))
        l
end

module Clock = struct
  (* [Sys.time] is process CPU time: it over-counts under Domain parallelism
     (every busy domain's cycles accumulate) and under-counts sleeps. Tuning
     reports therefore time phases on this monotonic-enough wall clock and
     keep [Sys.time] only for the cpu/wall speedup ratio. *)
  let wall () = Unix.gettimeofday ()
end

module Floats = struct
  let approx_equal ?(eps = 1e-5) a b =
    let scale = Float.max 1.0 (Float.max (Float.abs a) (Float.abs b)) in
    Float.abs (a -. b) <= (eps *. scale)

  let mean = function
    | [] -> invalid_arg "mean: empty list"
    | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

  let geomean = function
    | [] -> invalid_arg "geomean: empty list"
    | l ->
      let log_sum = List.fold_left (fun acc x -> acc +. log x) 0.0 l in
      exp (log_sum /. float_of_int (List.length l))
end

module Linsolve = struct
  let solve a b =
    let n = Array.length b in
    assert (Array.length a = n);
    let a = Array.map Array.copy a and b = Array.copy b in
    for col = 0 to n - 1 do
      (* Partial pivoting: bring the largest remaining entry to the diagonal. *)
      let pivot = ref col in
      for row = col + 1 to n - 1 do
        if Float.abs a.(row).(col) > Float.abs a.(!pivot).(col) then pivot := row
      done;
      if Float.abs a.(!pivot).(col) < 1e-12 then failwith "Linsolve.solve: singular system";
      if !pivot <> col then begin
        let tmp = a.(col) in
        a.(col) <- a.(!pivot);
        a.(!pivot) <- tmp;
        let tb = b.(col) in
        b.(col) <- b.(!pivot);
        b.(!pivot) <- tb
      end;
      for row = col + 1 to n - 1 do
        let factor = a.(row).(col) /. a.(col).(col) in
        for k = col to n - 1 do
          a.(row).(k) <- a.(row).(k) -. (factor *. a.(col).(k))
        done;
        b.(row) <- b.(row) -. (factor *. b.(col))
      done
    done;
    let x = Array.make n 0.0 in
    for row = n - 1 downto 0 do
      let s = ref b.(row) in
      for k = row + 1 to n - 1 do
        s := !s -. (a.(row).(k) *. x.(k))
      done;
      x.(row) <- !s /. a.(row).(row)
    done;
    x

  let least_squares x y =
    let rows = Array.length x in
    assert (rows = Array.length y && rows > 0);
    let cols = Array.length x.(0) in
    let xtx = Array.make_matrix cols cols 0.0 in
    let xty = Array.make cols 0.0 in
    for r = 0 to rows - 1 do
      for i = 0 to cols - 1 do
        xty.(i) <- xty.(i) +. (x.(r).(i) *. y.(r));
        for j = 0 to cols - 1 do
          xtx.(i).(j) <- xtx.(i).(j) +. (x.(r).(i) *. x.(r).(j))
        done
      done
    done;
    (* Tikhonov damping keeps the normal equations solvable when a feature
       column is (numerically) constant across the sample set. *)
    for i = 0 to cols - 1 do
      xtx.(i).(i) <- xtx.(i).(i) +. 1e-9
    done;
    solve xtx xty
end

module Parallel = Parallel
module Det_rng = Det_rng
module Fault = Fault
module Swatop_error = Swatop_error
module Running_stat = Running_stat
module Retry = Retry
