(** Deterministic, stateless pseudo-randomness.

    Every draw is a pure function of (seed, site, k) — no stream state — so
    a value never depends on evaluation order, domain scheduling, or how
    work was chunked across the parallel pool. {!Fault} derives its
    probability triggers this way; the guided tuner derives its exploration
    picks and annealing acceptances the same way, which is what makes a
    tuning run replay identically at any job count. *)

val mix : int -> int -> int
(** SplitMix64-style avalanche of two native ints (may be negative). *)

val fnv : string -> int
(** FNV-1a over the bytes of a string (may be negative). *)

val hash : seed:int -> site:string -> k:int -> int
(** Non-negative pure hash of the triple. *)

val uniform : seed:int -> site:string -> k:int -> float
(** In [\[0, 1)]. *)

val int : seed:int -> site:string -> k:int -> int -> int
(** [int ~seed ~site ~k n] is in [\[0, n)]. Raises [Invalid_argument] when
    [n <= 0]. *)
