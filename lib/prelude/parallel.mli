(** A fixed Domain pool with chunked, deterministic parallel combinators.

    Worker domains are spawned lazily on the first parallel call and live for
    the rest of the process (joined via [at_exit]). Every combinator returns
    its results in input order, so a parallel run merges to the same value as
    a sequential one; parallelism only changes wall-clock time.

    The job count resolves, in priority order, to: the {!set_jobs} override,
    the [SWATOP_JOBS] environment variable, then
    [Domain.recommended_domain_count ()]. With one job — or when called from
    inside a worker domain, where re-entering the fixed pool could deadlock —
    everything degrades to a plain sequential fold. *)

val jobs : unit -> int
(** The job count parallel regions will use by default (always [>= 1]). *)

val set_jobs : int option -> unit
(** Process-wide override of the job count (e.g. from a [--jobs] CLI flag);
    [None] restores the [SWATOP_JOBS] / hardware default. Raises
    [Invalid_argument] on a non-positive count. *)

val map_chunks : ?jobs:int -> f:(int -> 'a array -> 'b) -> 'a array -> 'b list
(** [map_chunks ~f arr] splits [arr] into contiguous balanced chunks, applies
    [f start_index chunk] to each on the pool, and returns the per-chunk
    results in chunk order. [f] runs sequentially within a chunk, so it can
    carry an ordered local fold (e.g. a running top-k) that the caller then
    merges deterministically. *)

val parallel_map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel [List.map]. *)

val try_parallel_map : ?jobs:int -> ('a -> 'b) -> 'a list -> ('b, exn) result list
(** Crash-isolated {!parallel_map}: an element whose [f] raises yields
    [Error exn] in place instead of killing the batch — the other elements
    (and the worker pool) are unaffected. *)

val parallel_min_by : ?jobs:int -> ('a -> float) -> 'a list -> 'a
(** The element minimising [f], earliest occurrence winning ties — identical
    to [Prelude.Lists.min_float_by] run sequentially. Raises
    [Invalid_argument] on an empty list. *)
