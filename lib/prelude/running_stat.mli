(** Online mean/variance (Welford) with retained samples for exact
    quantiles.

    The mean/stddev accumulators are numerically stable at any sample
    count; every observation is also retained, so {!percentile} is exact
    (nearest-rank over the sorted population) rather than a sketch. One
    accumulator is meant for one metric series — per request class, per
    phase — with counts up to the low millions; retention is O(n) floats.

    Not domain-safe: confine an accumulator to one domain (the serving
    simulator's event loop is sequential by construction). *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float

val stddev : t -> float
(** Sample standard deviation; [0.0] below two observations. *)

val min : t -> float
val max : t -> float
(** [0.0] when empty (matching {!mean}). *)

val percentile : t -> float -> float
(** [percentile t p] for [p] in [0..100], nearest-rank convention:
    the smallest retained value whose rank is [>= ceil (p/100 * n)].
    [0.0] when empty. *)
