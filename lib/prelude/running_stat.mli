(** Online mean/variance (Welford) with retained samples for quantiles.

    The mean/stddev accumulators are numerically stable at any sample
    count. By default every observation is also retained, so {!percentile}
    is exact (nearest-rank over the sorted population) rather than a
    sketch; one accumulator is meant for one metric series — per request
    class, per phase — with counts up to the low millions.

    With [~cap], retention is bounded: once the population exceeds the
    cap, the kept set becomes a seeded uniform reservoir (Vitter's
    Algorithm R through {!Det_rng} — deterministic, replayable) and
    {!percentile} is a uniform-sample estimate. {!mean}, {!stddev},
    {!min}, {!max} and {!count} remain exact over the full population
    either way. Long-running serving soaks use a cap so their memory does
    not grow linearly with completed requests.

    Not domain-safe: confine an accumulator to one domain (the serving
    simulator's event loop is sequential by construction). *)

type t

val create : ?cap:int -> ?seed:int -> unit -> t
(** [cap] bounds sample retention (default: unbounded); [seed] roots the
    reservoir's replacement draws (default 7, only meaningful with a
    cap). Raises [Invalid_argument] when [cap < 1]. *)

val add : t -> float -> unit
val count : t -> int
(** Observations seen, not retained: unaffected by the cap. *)

val mean : t -> float

val stddev : t -> float
(** Sample standard deviation; [0.0] below two observations. *)

val min : t -> float
val max : t -> float
(** [0.0] when empty (matching {!mean}). *)

val retained : t -> int
(** Samples currently held: [min count cap]. *)

val percentile : t -> float -> float
(** [percentile t p] for [p] in [0..100], nearest-rank convention over
    the retained samples: the smallest retained value whose rank is
    [>= ceil (p/100 * retained)]. Exact below the cap, a seeded
    uniform-sample estimate above it. [0.0] when empty. *)
