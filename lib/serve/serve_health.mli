(** Per-CG health tracking: failure-windowed circuit breakers and ramped
    re-admission.

    Each core group owns a small state machine driven by the shard's
    batch outcomes:

    {v
      Healthy --failure--> Suspect --window trips--> Open
      Healthy/Suspect/Probing --hard kill--> Open
      Open --probe recovers--> Probing --ramp successes--> Healthy
    v}

    - {b Healthy}: serving normally.
    - {b Suspect}: recent failures in the sliding outcome window, still
      serving; a clean window decays back to Healthy.
    - {b Open}: the breaker tripped (>= [hc_trip] failures among the last
      [hc_window] outcomes) or the CG was hard-killed; the CG takes no
      work and {!Serve_shard} probes it on the virtual clock.
    - {b Probing}: a probe succeeded; the CG is re-admitted under a load
      ramp — {!load_factor} inflates its estimated cost so least-loaded
      dispatch routes it a growing share — and graduates to Healthy
      after [hc_ramp] consecutive successes.

    The module is pure bookkeeping: it never raises faults, schedules
    events or touches the executor. {!Serve_shard} consults it at batch
    boundaries, which keeps every transition deterministic in virtual
    time. *)

type state = Healthy | Suspect | Open | Probing

val state_to_string : state -> string

type config = {
  hc_window : int;  (** sliding outcome window per CG, >= 1 *)
  hc_trip : int;  (** failures within the window that trip the breaker, >= 1 *)
  hc_probe_interval : float;  (** virtual seconds between recovery probes, > 0 *)
  hc_ramp : int;  (** successes to graduate Probing -> Healthy, >= 1 *)
  hc_watchdog : float;  (** per-batch deadline as a multiple of expected service time, > 1 *)
}

val default : config
(** Window 8, trip 3, probe every 50 ms, ramp 4, watchdog at 4x. *)

type t

val create : ?config:config -> cgs:int -> unit -> t
(** All CGs start Healthy. Raises [Invalid_argument] on a bad config or
    [cgs < 1]. *)

val config : t -> config
val state : t -> int -> state

val on_success : t -> int -> unit
(** A batch completed: pushes a clean outcome; Suspect with a clean
    window decays to Healthy; Probing counts ramp progress and graduates
    after [hc_ramp] successes. *)

val on_failure : t -> int -> unit
(** A batch failed (executor exception): pushes a failed outcome;
    Healthy becomes Suspect; Probing restarts its ramp. Check {!tripped}
    afterwards — tripping is the caller's (kill) decision. *)

val tripped : t -> int -> bool
(** [>= hc_trip] failures among the last [hc_window] outcomes. *)

val on_kill : t -> int -> unit
(** Hard kill (fault injection, watchdog, breaker): force Open and clear
    the window. *)

val on_recover : t -> int -> unit
(** A probe came back: Open -> Probing with a full ramp ahead. *)

val load_factor : t -> int -> float
(** Dispatch-cost multiplier: [1.0] normally; while Probing, decays
    linearly from [2.0] to [1.0] as the ramp completes, so a rejoining CG
    takes an increasing share of load instead of an instant full one. *)

val failures_in_window : t -> int -> int
val counters : t -> successes:int ref -> failures:int ref -> unit
(** Totals across all CGs, added into the caller's refs. *)
