(** Seeded synthetic traffic: open-loop arrival traces.

    Open-loop means arrivals do not react to the system — the trace is a
    pure function of (kind, rate, duration, seed) via {!Prelude.Det_rng},
    so the {e same requests arrive at the same instants} whatever the CG
    count, batch policy, or fault plan. That independence is what lets a
    serving experiment vary one knob and diff the rest.

    Two generators:
    - {!Poisson}: homogeneous Poisson process at [rate] requests/s
      (i.i.d. exponential gaps), every request in class ["steady"];
    - {!Bursty}: an on/off modulated Poisson process with a 1-second
      cycle — 0.25 s ON at [3 x rate] (class ["burst"]) then 0.75 s OFF
      at [rate / 3] (class ["steady"]) — the time-averaged rate is still
      [rate], but queues see sustained bursts instead of white noise. *)

type kind = Poisson | Bursty

val kind_to_string : kind -> string

val kind_of_string : string -> (kind, string) result
(** Accepts ["poisson"] and ["bursty"] (case-insensitive). *)

type arrival = {
  ar_time : float;  (** seconds from the start of the run, nondecreasing *)
  ar_class : string;
}

val generate : kind -> rate:float -> duration:float -> seed:int -> arrival list
(** Arrivals in [[0, duration)], in time order. Raises [Invalid_argument]
    when [rate <= 0] or [duration <= 0]. *)
