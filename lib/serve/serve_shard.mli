(** Multi-CG sharding: one worker per SW26010 core group over a shared
    executor.

    The SW26010 node has {!Sw26010.Config.num_cgs} independent core
    groups; the serving layer models each as a worker that executes one
    batch at a time, with its own FIFO backlog. Dispatch is least-loaded:
    a batch goes to the live CG whose estimated free time (backlog nominal
    seconds) is earliest, ties to the lowest CG id — deterministic given
    the event order.

    Workers are {e simulated} inside the {!Serve_sim} loop: executing a
    batch calls the executor synchronously for its simulated service
    seconds, then schedules the completion event at [now + seconds]. The
    executor is an abstract record so tests can drive the scheduler with
    synthetic service times, and the engine plugs in real compiled plans
    ({!Serve_net}).

    {b Resilience.} Each batch start probes the ["serve.cg"] fault site
    keyed by the CG id; an injected fault kills the worker outright. An
    exception {e escaping the executor} (e.g. an exhausted
    {!Swatop_graph.Graph_exec} retry + fallback chain) is softer: the
    batch requeues through least-loaded dispatch and the failure counts
    against the CG's {!Serve_health} breaker window — the CG only dies
    when the breaker trips. A per-batch watchdog kills a CG whose batch
    started but whose completion never arrived (the ["serve.cg.hang"]
    site injects exactly that). Killing a CG {e drains} its whole
    backlog, including the batch it was about to run, to the surviving
    CGs; requests are never dropped by a CG failure. Only the death of
    the last CG raises ({!Prelude.Swatop_error.Error}).

    {b Recovery.} A dead CG is probed periodically on the virtual clock
    (bounded by [horizon] so the event loop drains); the probe succeeds
    when the ["serve.cg.recover"] fault site — keyed by the CG id —
    fires, making recovery exactly as injectable and deterministic as
    the kill. A recovered CG re-enters Probing state and takes a ramped,
    increasing share of load (see {!Serve_health.load_factor}) until it
    graduates back to Healthy. *)

(** Outcome of executing one batch. *)
type run_result = {
  ru_seconds : float;  (** simulated service seconds *)
  ru_fallbacks : int;  (** steps that fell back to a different strategy *)
  ru_retried : int;  (** steps absorbed by same-strategy retry *)
}

type executor = {
  ex_name : string;
  ex_floor : float;
      (** static lower bound (seconds) on the service time of any batch *)
  ex_nominal : int -> float;
      (** estimated service seconds for an [n]-request batch; used only
          for least-loaded dispatch *)
  ex_run : cg:int -> n:int -> run_result;
      (** execute an [n]-request batch on CG [cg]. May raise — the shard
          requeues the batch and charges the CG's breaker window. *)
}

(** Per-CG counters, readable at any time. *)
type cg_stat = {
  g_id : int;
  g_alive : bool;
  g_state : string;  (** {!Serve_health.state_to_string} of the breaker *)
  g_batches : int;  (** batches completed or in flight *)
  g_requests : int;
  g_fallbacks : int;  (** executor-internal fallback activations *)
  g_retried : int;  (** executor-internal retry absorptions *)
  g_busy : float;  (** simulated seconds spent executing *)
}

type kill = {
  k_cg : int;
  k_time : float;  (** virtual time of death *)
  k_cause : string;  (** exception label, or ["watchdog"] *)
  k_drained : int;  (** batches re-dispatched to survivors *)
}

type recovery = {
  rv_cg : int;
  rv_time : float;  (** virtual time of re-admission *)
  rv_probes : int;  (** probes sent to this CG since it died *)
}

type t

val create :
  ?health:Serve_health.config ->
  ?horizon:float ->
  sim:Serve_sim.t ->
  executor:executor ->
  cgs:int ->
  on_complete:(Serve_batch.request list -> finished:float -> cg:int -> unit) ->
  unit ->
  t
(** [health] defaults to {!Serve_health.default}. [horizon] (default
    [infinity]) bounds recovery probing in virtual time: with the
    default no probes are ever scheduled and dead CGs stay dead, which
    is the pre-recovery behavior. Raises [Invalid_argument] when
    [cgs < 1]. [on_complete] fires inside the event loop at each batch's
    completion instant. *)

val submit : t -> Serve_batch.request list -> unit
(** Dispatch a batch (FIFO per CG). Raises {!Prelude.Swatop_error.Error}
    when no CG is alive. *)

val stats : t -> cg_stat list
(** In CG-id order. *)

val kills : t -> kill list
(** In order of death. *)

val recoveries : t -> recovery list
(** In order of re-admission. *)

val probes : t -> int
(** Synthetic recovery probes sent across all CGs. *)

val requeues : t -> int
(** Batches requeued after a non-fatal executor failure. *)

val health : t -> Serve_health.t
val alive : t -> int
