(** Multi-CG sharding: one worker per SW26010 core group over a shared
    executor.

    The SW26010 node has {!Sw26010.Config.num_cgs} independent core
    groups; the serving layer models each as a worker that executes one
    batch at a time, with its own FIFO backlog. Dispatch is least-loaded:
    a batch goes to the live CG whose estimated free time (backlog nominal
    seconds) is earliest, ties to the lowest CG id — deterministic given
    the event order.

    Workers are {e simulated} inside the {!Serve_sim} loop: executing a
    batch calls the executor synchronously for its simulated service
    seconds, then schedules the completion event at [now + seconds]. The
    executor is an abstract record so tests can drive the scheduler with
    synthetic service times, and the engine plugs in real compiled plans
    ({!Serve_net}).

    {b Resilience} (the PR 4 integration): each batch start probes the
    ["serve.cg"] fault site keyed by the CG id. An injected fault — or any
    exception escaping the executor, e.g. an exhausted
    {!Swatop_graph.Graph_exec} fallback chain — kills the worker: the CG
    is marked dead and its whole backlog, including the batch it was about
    to run, {e drains} to the surviving CGs through the normal least-loaded
    dispatch. Requests are therefore never dropped by a CG failure; they
    complete elsewhere (or, below the fatal level, complete {e on} the CG
    via the executor's internal fallback chains, reported through
    [fallbacks]). Only the death of the last CG raises
    ({!Prelude.Swatop_error.Error}). *)

type executor = {
  ex_name : string;
  ex_floor : float;
      (** static lower bound (seconds) on the service time of any batch *)
  ex_nominal : int -> float;
      (** estimated service seconds for an [n]-request batch; used only
          for least-loaded dispatch *)
  ex_run : cg:int -> n:int -> float * int;
      (** execute an [n]-request batch on CG [cg]; returns (simulated
          service seconds, fallback-chain activations). May raise — the
          shard treats any exception as fatal to the CG. *)
}

(** Per-CG counters, readable at any time. *)
type cg_stat = {
  g_id : int;
  g_alive : bool;
  g_batches : int;  (** batches completed or in flight *)
  g_requests : int;
  g_fallbacks : int;  (** executor-internal fallback activations *)
  g_busy : float;  (** simulated seconds spent executing *)
}

type kill = {
  k_cg : int;
  k_time : float;  (** virtual time of death *)
  k_cause : string;  (** exception label *)
  k_drained : int;  (** batches re-dispatched to survivors *)
}

type t

val create :
  sim:Serve_sim.t ->
  executor:executor ->
  cgs:int ->
  on_complete:(Serve_batch.request list -> finished:float -> cg:int -> unit) ->
  t
(** Raises [Invalid_argument] when [cgs < 1]. [on_complete] fires inside
    the event loop at each batch's completion instant. *)

val submit : t -> Serve_batch.request list -> unit
(** Dispatch a batch (FIFO per CG). Raises {!Prelude.Swatop_error.Error}
    when no CG is alive. *)

val stats : t -> cg_stat list
(** In CG-id order. *)

val kills : t -> kill list
(** In order of death. *)

val alive : t -> int
