type kind = Poisson | Bursty

let kind_to_string = function Poisson -> "poisson" | Bursty -> "bursty"

let kind_of_string s =
  match String.lowercase_ascii s with
  | "poisson" -> Ok Poisson
  | "bursty" -> Ok Bursty
  | s -> Error (Printf.sprintf "unknown trace kind %S (expected poisson or bursty)" s)

type arrival = { ar_time : float; ar_class : string }

let site = "serve.trace"

(* One exponential gap at [rate], using draw index [k]. 1 - u keeps the
   argument of log strictly positive (u is in [0, 1)). *)
let gap ~seed ~k rate =
  let u = Prelude.Det_rng.uniform ~seed ~site ~k in
  -.log (1.0 -. u) /. rate

(* The bursty trace is a piecewise-constant-rate Poisson process. Thanks to
   the exponential's memorylessness, re-drawing a fresh gap at each phase
   boundary samples exactly the non-homogeneous process — no thinning
   needed, and the draw counter stays a simple monotone [k]. *)
let phases = [ (0.25, 3.0, "burst"); (0.75, 1.0 /. 3.0, "steady") ]
let cycle = List.fold_left (fun acc (len, _, _) -> acc +. len) 0.0 phases

let phase_at time =
  let pos = Float.rem time cycle in
  let rec find start = function
    | [ (len, mult, cls) ] -> (mult, cls, start +. len -. pos)
    | (len, mult, cls) :: rest ->
      if pos < start +. len then (mult, cls, start +. len -. pos) else find (start +. len) rest
    | [] -> assert false
  in
  find 0.0 phases

let generate kind ~rate ~duration ~seed =
  if rate <= 0.0 || not (Float.is_finite rate) then
    invalid_arg (Printf.sprintf "Serve_trace.generate: rate must be positive, got %g" rate);
  if duration <= 0.0 || not (Float.is_finite duration) then
    invalid_arg (Printf.sprintf "Serve_trace.generate: duration must be positive, got %g" duration);
  let acc = ref [] in
  let k = ref 0 in
  let draw rate =
    let g = gap ~seed ~k:!k rate in
    incr k;
    g
  in
  (match kind with
  | Poisson ->
    let t = ref (draw rate) in
    while !t < duration do
      acc := { ar_time = !t; ar_class = "steady" } :: !acc;
      t := !t +. draw rate
    done
  | Bursty ->
    (* Walk time phase by phase; a gap that overruns the current phase is
       discarded and re-drawn from the boundary at the new rate. *)
    let t = ref 0.0 in
    while !t < duration do
      let mult, cls, remaining = phase_at !t in
      let g = draw (rate *. mult) in
      if g < remaining then begin
        t := !t +. g;
        if !t < duration then acc := { ar_time = !t; ar_class = cls } :: !acc
      end
      else t := !t +. remaining
    done);
  List.rev !acc
