type state = Healthy | Suspect | Open | Probing

let state_to_string = function
  | Healthy -> "healthy"
  | Suspect -> "suspect"
  | Open -> "open"
  | Probing -> "probing"

type config = {
  hc_window : int;
  hc_trip : int;
  hc_probe_interval : float;
  hc_ramp : int;
  hc_watchdog : float;
}

let default =
  { hc_window = 8; hc_trip = 3; hc_probe_interval = 0.050; hc_ramp = 4; hc_watchdog = 4.0 }

let validate c =
  if c.hc_window < 1 then
    invalid_arg (Printf.sprintf "Serve_health: window must be >= 1, got %d" c.hc_window);
  if c.hc_trip < 1 then
    invalid_arg (Printf.sprintf "Serve_health: trip must be >= 1, got %d" c.hc_trip);
  if c.hc_probe_interval <= 0.0 || not (Float.is_finite c.hc_probe_interval) then
    invalid_arg
      (Printf.sprintf "Serve_health: probe interval must be positive, got %g" c.hc_probe_interval);
  if c.hc_ramp < 1 then
    invalid_arg (Printf.sprintf "Serve_health: ramp must be >= 1, got %d" c.hc_ramp);
  if c.hc_watchdog <= 1.0 || not (Float.is_finite c.hc_watchdog) then
    invalid_arg
      (Printf.sprintf "Serve_health: watchdog factor must be > 1, got %g" c.hc_watchdog)

(* Per-CG sliding outcome window as a ring of booleans (true = failure);
   [filled] saturates at the window size. *)
type cg = {
  mutable st : state;
  window : bool array;
  mutable pos : int;
  mutable filled : int;
  mutable ramp_left : int;
  mutable successes : int;
  mutable failures : int;
}

type t = { cfg : config; cgs : cg array }

let create ?(config = default) ~cgs () =
  validate config;
  if cgs < 1 then invalid_arg (Printf.sprintf "Serve_health.create: cgs must be >= 1, got %d" cgs);
  {
    cfg = config;
    cgs =
      Array.init cgs (fun _ ->
          {
            st = Healthy;
            window = Array.make config.hc_window false;
            pos = 0;
            filled = 0;
            ramp_left = 0;
            successes = 0;
            failures = 0;
          });
  }

let config t = t.cfg

let cg t id =
  if id < 0 || id >= Array.length t.cgs then
    invalid_arg (Printf.sprintf "Serve_health: no such CG %d" id);
  t.cgs.(id)

let state t id = (cg t id).st

let push c outcome window_len =
  c.window.(c.pos) <- outcome;
  c.pos <- (c.pos + 1) mod window_len;
  if c.filled < window_len then c.filled <- c.filled + 1

let failures_in_window t id =
  let c = cg t id in
  let n = ref 0 in
  for i = 0 to c.filled - 1 do
    if c.window.(i) then incr n
  done;
  !n

let clear_window c =
  Array.fill c.window 0 (Array.length c.window) false;
  c.pos <- 0;
  c.filled <- 0

let on_success t id =
  let c = cg t id in
  c.successes <- c.successes + 1;
  push c false t.cfg.hc_window;
  match c.st with
  | Suspect -> if failures_in_window t id = 0 then c.st <- Healthy
  | Probing ->
    c.ramp_left <- c.ramp_left - 1;
    if c.ramp_left <= 0 then begin
      c.st <- Healthy;
      c.ramp_left <- 0
    end
  | Healthy | Open -> ()

let on_failure t id =
  let c = cg t id in
  c.failures <- c.failures + 1;
  push c true t.cfg.hc_window;
  match c.st with
  | Healthy -> c.st <- Suspect
  | Probing -> c.ramp_left <- t.cfg.hc_ramp (* a wobble during re-admission restarts the ramp *)
  | Suspect | Open -> ()

let tripped t id = failures_in_window t id >= t.cfg.hc_trip

let on_kill t id =
  let c = cg t id in
  c.st <- Open;
  c.ramp_left <- 0;
  clear_window c

let on_recover t id =
  let c = cg t id in
  c.st <- Probing;
  c.ramp_left <- t.cfg.hc_ramp;
  clear_window c

let load_factor t id =
  let c = cg t id in
  match c.st with
  | Probing -> 1.0 +. (float_of_int c.ramp_left /. float_of_int t.cfg.hc_ramp)
  | Healthy | Suspect | Open -> 1.0

let counters t ~successes ~failures =
  Array.iter
    (fun c ->
      successes := !successes + c.successes;
      failures := !failures + c.failures)
    t.cgs
