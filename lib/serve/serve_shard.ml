type executor = {
  ex_name : string;
  ex_floor : float;
  ex_nominal : int -> float;
  ex_run : cg:int -> n:int -> float * int;
}

type cg_stat = {
  g_id : int;
  g_alive : bool;
  g_batches : int;
  g_requests : int;
  g_fallbacks : int;
  g_busy : float;
}

type kill = { k_cg : int; k_time : float; k_cause : string; k_drained : int }

type cg = {
  id : int;
  mutable alive : bool;
  mutable batches : int;
  mutable requests : int;
  mutable fallbacks : int;
  mutable busy : float;
  mutable free_at : float;  (* estimated completion of the backlog *)
  mutable running : bool;
  backlog : Serve_batch.request list Queue.t;
}

type t = {
  sim : Serve_sim.t;
  executor : executor;
  cgs : cg array;
  on_complete : Serve_batch.request list -> finished:float -> cg:int -> unit;
  mutable killed : kill list;  (* reverse order of death *)
}

let create ~sim ~executor ~cgs ~on_complete =
  if cgs < 1 then invalid_arg (Printf.sprintf "Serve_shard.create: cgs must be >= 1, got %d" cgs);
  {
    sim;
    executor;
    cgs =
      Array.init cgs (fun id ->
          {
            id;
            alive = true;
            batches = 0;
            requests = 0;
            fallbacks = 0;
            busy = 0.0;
            free_at = 0.0;
            running = false;
            backlog = Queue.create ();
          });
    on_complete;
    killed = [];
  }

let fault_site = "serve.cg"

let least_loaded t =
  Array.fold_left
    (fun best cg ->
      if not cg.alive then best
      else
        match best with
        | Some b when b.free_at <= cg.free_at -> best
        | _ -> Some cg)
    None t.cgs

(* Kill [cg] and re-dispatch its entire backlog (head batch included) to
   the survivors. Runs inside the event loop, so the drain is atomic in
   virtual time: every re-dispatched batch restarts queueing at [now]. *)
let rec kill t cg head cause =
  cg.alive <- false;
  cg.running <- false;
  let stranded = head :: List.of_seq (Queue.to_seq cg.backlog) in
  Queue.clear cg.backlog;
  t.killed <-
    { k_cg = cg.id; k_time = Serve_sim.now t.sim; k_cause = cause; k_drained = List.length stranded }
    :: t.killed;
  List.iter (submit t) stranded

and start_next t cg =
  if cg.alive && (not cg.running) && not (Queue.is_empty cg.backlog) then begin
    let batch = Queue.take cg.backlog in
    let n = List.length batch in
    match
      Prelude.Fault.check ~key:cg.id fault_site;
      t.executor.ex_run ~cg:cg.id ~n
    with
    | exception e -> kill t cg batch (Prelude.Swatop_error.label e)
    | seconds, fallbacks ->
      cg.running <- true;
      cg.batches <- cg.batches + 1;
      cg.requests <- cg.requests + n;
      cg.fallbacks <- cg.fallbacks + fallbacks;
      cg.busy <- cg.busy +. seconds;
      let finished = Serve_sim.now t.sim +. seconds in
      Serve_sim.at t.sim finished (fun () ->
          cg.running <- false;
          t.on_complete batch ~finished ~cg:cg.id;
          start_next t cg)
  end

and submit t batch =
  match least_loaded t with
  | None ->
    Prelude.Swatop_error.error ~site:"Serve_shard.submit"
      ~context:[ ("cgs", string_of_int (Array.length t.cgs)) ]
      "all core groups dead; cannot dispatch"
  | Some cg ->
    Queue.add batch cg.backlog;
    cg.free_at <-
      Float.max cg.free_at (Serve_sim.now t.sim) +. t.executor.ex_nominal (List.length batch);
    start_next t cg

let stats t =
  Array.to_list
    (Array.map
       (fun cg ->
         {
           g_id = cg.id;
           g_alive = cg.alive;
           g_batches = cg.batches;
           g_requests = cg.requests;
           g_fallbacks = cg.fallbacks;
           g_busy = cg.busy;
         })
       t.cgs)

let kills t = List.rev t.killed
let alive t = Array.fold_left (fun n cg -> if cg.alive then n + 1 else n) 0 t.cgs
