type run_result = { ru_seconds : float; ru_fallbacks : int; ru_retried : int }

type executor = {
  ex_name : string;
  ex_floor : float;
  ex_nominal : int -> float;
  ex_run : cg:int -> n:int -> run_result;
}

type cg_stat = {
  g_id : int;
  g_alive : bool;
  g_state : string;
  g_batches : int;
  g_requests : int;
  g_fallbacks : int;
  g_retried : int;
  g_busy : float;
}

type kill = { k_cg : int; k_time : float; k_cause : string; k_drained : int }
type recovery = { rv_cg : int; rv_time : float; rv_probes : int }

type cg = {
  id : int;
  mutable alive : bool;
  mutable batches : int;
  mutable requests : int;
  mutable fallbacks : int;
  mutable retried : int;
  mutable busy : float;
  mutable free_at : float;  (* estimated completion of the backlog *)
  mutable running : bool;
  mutable serial : int;  (* current-batch marker checked by the watchdog *)
  mutable probes_since_kill : int;
  backlog : Serve_batch.request list Queue.t;
}

type t = {
  sim : Serve_sim.t;
  executor : executor;
  cgs : cg array;
  health : Serve_health.t;
  horizon : float;  (* probes stop past this virtual time, bounding the sim *)
  on_complete : Serve_batch.request list -> finished:float -> cg:int -> unit;
  mutable killed : kill list;  (* reverse order of death *)
  mutable recovered : recovery list;  (* reverse order of recovery *)
  mutable probes_sent : int;
  mutable requeued : int;
}

let create ?health ?(horizon = infinity) ~sim ~executor ~cgs ~on_complete () =
  if cgs < 1 then invalid_arg (Printf.sprintf "Serve_shard.create: cgs must be >= 1, got %d" cgs);
  {
    sim;
    executor;
    cgs =
      Array.init cgs (fun id ->
          {
            id;
            alive = true;
            batches = 0;
            requests = 0;
            fallbacks = 0;
            retried = 0;
            busy = 0.0;
            free_at = 0.0;
            running = false;
            serial = 0;
            probes_since_kill = 0;
            backlog = Queue.create ();
          });
    health = Serve_health.create ?config:health ~cgs ();
    horizon;
    on_complete;
    killed = [];
    recovered = [];
    probes_sent = 0;
    requeued = 0;
  }

let fault_site = "serve.cg"
let hang_site = "serve.cg.hang"
let recover_site = "serve.cg.recover"

let least_loaded t =
  Array.fold_left
    (fun best cg ->
      if not cg.alive then best
      else
        match best with
        | Some b when b.free_at <= cg.free_at -> best
        | _ -> Some cg)
    None t.cgs

(* Kill [cg] and re-dispatch its entire backlog (head batch included) to
   the survivors. Runs inside the event loop, so the drain is atomic in
   virtual time: every re-dispatched batch restarts queueing at [now].
   The breaker opens and — while the horizon lasts — periodic probes
   start asking the ["serve.cg.recover"] site whether the CG is back. *)
let rec kill t cg head cause =
  cg.alive <- false;
  cg.running <- false;
  cg.probes_since_kill <- 0;
  Serve_health.on_kill t.health cg.id;
  let stranded = head :: List.of_seq (Queue.to_seq cg.backlog) in
  Queue.clear cg.backlog;
  t.killed <-
    { k_cg = cg.id; k_time = Serve_sim.now t.sim; k_cause = cause; k_drained = List.length stranded }
    :: t.killed;
  schedule_probe t cg;
  List.iter (submit t) stranded

(* Synthetic recovery probe on the virtual clock. The probe "succeeds" —
   the CG answers — exactly when the deterministic fault plan fires the
   ["serve.cg.recover"] site (keyed by the CG id), which makes recovery as
   injectable and replayable as the faults themselves. Probing stops past
   the horizon so the event loop always drains. *)
and schedule_probe t cg =
  (* An infinite horizon means no probing at all — rescheduling forever
     would keep the event loop from draining. *)
  if Float.is_finite t.horizon then
    let tnext = Serve_sim.now t.sim +. (Serve_health.config t.health).hc_probe_interval in
    if tnext <= t.horizon then Serve_sim.at t.sim tnext (fun () -> probe t cg)

and probe t cg =
  if not cg.alive then begin
    t.probes_sent <- t.probes_sent + 1;
    cg.probes_since_kill <- cg.probes_since_kill + 1;
    match Prelude.Fault.check ~key:cg.id recover_site with
    | () -> schedule_probe t cg
    | exception Prelude.Fault.Injected _ -> recover t cg
  end

and recover t cg =
  cg.alive <- true;
  cg.running <- false;
  cg.free_at <- Serve_sim.now t.sim;
  Serve_health.on_recover t.health cg.id;
  t.recovered <-
    { rv_cg = cg.id; rv_time = Serve_sim.now t.sim; rv_probes = cg.probes_since_kill }
    :: t.recovered

(* Per-batch watchdog: if the same batch is still "running" on this CG
   when the deadline fires — the completion event never came, i.e. the CG
   hung — the CG is killed and the batch requeues with the backlog. For
   batches that complete normally the marker has moved on and the event
   is a no-op. *)
and arm_watchdog t cg ~serial ~batch ~expect =
  let factor = (Serve_health.config t.health).hc_watchdog in
  let deadline = Serve_sim.now t.sim +. (factor *. Float.max expect 1e-9) in
  Serve_sim.at t.sim deadline (fun () ->
      if cg.alive && cg.running && cg.serial = serial then kill t cg batch "watchdog")

and start_next t cg =
  if cg.alive && (not cg.running) && not (Queue.is_empty cg.backlog) then begin
    let batch = Queue.take cg.backlog in
    let n = List.length batch in
    match Prelude.Fault.check ~key:cg.id fault_site with
    | exception e ->
      (* Hard fault at batch start: the CG dies on the spot. *)
      kill t cg batch (Prelude.Swatop_error.label e)
    | () -> (
      match Prelude.Fault.check ~key:cg.id hang_site with
      | exception _ ->
        (* The batch starts but its completion never arrives; only the
           watchdog can reclaim the work. *)
        cg.running <- true;
        cg.serial <- cg.serial + 1;
        arm_watchdog t cg ~serial:cg.serial ~batch ~expect:(t.executor.ex_nominal n)
      | () -> (
        match t.executor.ex_run ~cg:cg.id ~n with
        | exception e ->
          (* The executor failed past its own retry/fallback chains. One
             failure is not a death sentence: the batch requeues through
             least-loaded dispatch and the failure counts against this
             CG's breaker window — enough of them trip it to Open. *)
          let cause = Prelude.Swatop_error.label e in
          Serve_health.on_failure t.health cg.id;
          if Serve_health.tripped t.health cg.id then kill t cg batch cause
          else begin
            t.requeued <- t.requeued + 1;
            submit t batch;
            start_next t cg
          end
        | ru ->
          cg.running <- true;
          cg.batches <- cg.batches + 1;
          cg.requests <- cg.requests + n;
          cg.fallbacks <- cg.fallbacks + ru.ru_fallbacks;
          cg.retried <- cg.retried + ru.ru_retried;
          cg.busy <- cg.busy +. ru.ru_seconds;
          cg.serial <- cg.serial + 1;
          let serial = cg.serial in
          let finished = Serve_sim.now t.sim +. ru.ru_seconds in
          Serve_sim.at t.sim finished (fun () ->
              cg.running <- false;
              Serve_health.on_success t.health cg.id;
              t.on_complete batch ~finished ~cg:cg.id;
              start_next t cg);
          arm_watchdog t cg ~serial ~batch
            ~expect:(Float.max ru.ru_seconds (t.executor.ex_nominal n))))
  end

and submit t batch =
  match least_loaded t with
  | None ->
    Prelude.Swatop_error.error ~site:"Serve_shard.submit"
      ~context:[ ("cgs", string_of_int (Array.length t.cgs)) ]
      "all core groups dead; cannot dispatch"
  | Some cg ->
    Queue.add batch cg.backlog;
    (* While a recovered CG ramps, its estimated cost is inflated so
       least-loaded dispatch routes it a growing — not instant — share. *)
    cg.free_at <-
      Float.max cg.free_at (Serve_sim.now t.sim)
      +. (t.executor.ex_nominal (List.length batch) *. Serve_health.load_factor t.health cg.id);
    start_next t cg

let stats t =
  Array.to_list
    (Array.map
       (fun cg ->
         {
           g_id = cg.id;
           g_alive = cg.alive;
           g_state = Serve_health.state_to_string (Serve_health.state t.health cg.id);
           g_batches = cg.batches;
           g_requests = cg.requests;
           g_fallbacks = cg.fallbacks;
           g_retried = cg.retried;
           g_busy = cg.busy;
         })
       t.cgs)

let kills t = List.rev t.killed
let recoveries t = List.rev t.recovered
let probes t = t.probes_sent
let requeues t = t.requeued
let health t = t.health
let alive t = Array.fold_left (fun n cg -> if cg.alive then n + 1 else n) 0 t.cgs
