(** Chaos-soak harness: N seeded fault plans against the full serving
    stack, with conservation and recovery assertions.

    Each scenario generates a deterministic fault plan — kind cycles
    through kill / kill-then-recover / DMA transient / layer transient /
    hang / mixed, parameters drawn through {!Prelude.Det_rng} from the
    soak seed — installs it as the process-wide {!Prelude.Fault} plan,
    runs the whole trace -> admit -> batch -> shard -> exec stack under
    it, and restores the previous plan. A fault-free baseline runs first;
    every scenario is scored against it.

    The invariants the soak checks are the serving layer's contract:

    - {b conservation}: [arrivals = completed + shed] and zero drops, in
      every scenario (the engine itself raises on violation);
    - {b recovery}: scenarios whose killed CG was re-admitted through
      probes sustain at least a configurable fraction (default 95%) of
      fault-free throughput;
    - {b bounded tail}: p99 latency inflates by at most a configurable
      factor over baseline.

    Everything — plans, traces, executions, probes — lives on virtual
    time and seeded draws, so a soak replays bit-identically at any host
    job count; {!to_json} contains no wall-clock fields. *)

type scenario = {
  sc_index : int;
  sc_kind : string;
      (** "kill" | "kill-recover" | "dma-transient" | "layer-transient"
          | "hang" | "mixed" *)
  sc_plan : string;  (** the installed fault-plan spec *)
  sc_arrivals : int;
  sc_completed : int;
  sc_shed : int;
  sc_dropped : int;
  sc_kills : int;
  sc_recoveries : int;
  sc_retried : int;
  sc_fallbacks : int;
  sc_requeues : int;
  sc_probes : int;
  sc_throughput : float;
  sc_p99 : float;
  sc_conserved : bool;
  sc_throughput_ratio : float;  (** vs fault-free baseline *)
  sc_p99_ratio : float;  (** vs fault-free baseline (1.0 when baseline is 0) *)
}

type report = {
  ch_name : string;
  ch_plans : int;
  ch_seed : int;
  ch_baseline_throughput : float;
  ch_baseline_p99 : float;
  ch_scenarios : scenario list;  (** by index *)
  ch_all_conserved : bool;
  ch_total_kills : int;
  ch_total_recoveries : int;
  ch_total_retried : int;
  ch_total_requeues : int;
  ch_max_p99_ratio : float;
  ch_min_recovered_throughput_ratio : float;
      (** min throughput ratio among scenarios that recovered a CG; [1.0]
          when none did *)
}

val plan_for : seed:int -> int -> string * string
(** [plan_for ~seed i] is scenario [i]'s [(kind, fault-plan spec)] — a
    pure function, exposed so tests can pin the schedule. *)

val run :
  ?plans:int -> ?seed:int -> executor:Serve_shard.executor -> Serve_engine.config -> report
(** [plans] scenarios (default 20) rooted at [seed] (default the
    config's [cf_seed]). Installs and restores the process-wide fault
    plan around each scenario; not safe to race with other fault-plan
    users. Every scenario replays the baseline's trace (the config's own
    seed), so its throughput/p99 ratios measure the fault's effect alone
    rather than sampling noise across different traces. *)

val check : ?min_recovered_ratio:float -> ?max_p99_ratio:float -> report -> string list
(** Invariant failures, empty when the soak passes. Defaults: recovered
    scenarios keep >= 0.95 of baseline throughput; p99 inflates <= 10x. *)

val to_text : report -> string
val to_json : report -> string
