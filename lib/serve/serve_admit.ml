type shed_reason = Queue_full | Hopeless

let shed_reason_to_string = function Queue_full -> "queue-full" | Hopeless -> "hopeless"

type t = {
  queue_depth : int;
  slo : float;
  floor : float;
  cap : int option;  (* latency-sample retention bound, per accumulator *)
  seed : int;
  mutable completed : int;
  mutable shed_queue_full : int;
  mutable shed_hopeless : int;
  mutable slo_violations : int;
  latency : Prelude.Running_stat.t;
  by_class : (string, Prelude.Running_stat.t) Hashtbl.t;
}

let make_stat ?cap ~seed () = Prelude.Running_stat.create ?cap ~seed ()

let create ?cap ?(seed = 7) ~queue_depth ~slo ~floor () =
  if queue_depth < 1 then
    invalid_arg (Printf.sprintf "Serve_admit.create: queue_depth must be >= 1, got %d" queue_depth);
  if slo <= 0.0 || not (Float.is_finite slo) then
    invalid_arg (Printf.sprintf "Serve_admit.create: slo must be positive, got %g" slo);
  if floor < 0.0 || not (Float.is_finite floor) then
    invalid_arg (Printf.sprintf "Serve_admit.create: floor must be >= 0, got %g" floor);
  {
    queue_depth;
    slo;
    floor;
    cap;
    seed;
    completed = 0;
    shed_queue_full = 0;
    shed_hopeless = 0;
    slo_violations = 0;
    latency = make_stat ?cap ~seed ();
    by_class = Hashtbl.create 4;
  }

let floor t = t.floor

(* The epsilon keeps a deadline that is *exactly* reachable on the admit
   side: shedding must only fire on a provable miss, and float round-off
   is not proof. *)
let hopeless t ~now ~deadline = now +. t.floor > deadline +. 1e-12

let admit t ~now ~queued =
  if queued >= t.queue_depth then begin
    t.shed_queue_full <- t.shed_queue_full + 1;
    Error Queue_full
  end
  else
    let deadline = now +. t.slo in
    if hopeless t ~now ~deadline then begin
      (* Static config problem: the service floor alone exceeds the SLO, so
         every request is hopeless on arrival. *)
      t.shed_hopeless <- t.shed_hopeless + 1;
      Error Hopeless
    end
    else Ok deadline

let viable t ~now ~deadline =
  if hopeless t ~now ~deadline then begin
    t.shed_hopeless <- t.shed_hopeless + 1;
    false
  end
  else true

let complete t ~cls ~latency =
  t.completed <- t.completed + 1;
  if latency > t.slo +. 1e-12 then t.slo_violations <- t.slo_violations + 1;
  Prelude.Running_stat.add t.latency latency;
  let stat =
    match Hashtbl.find_opt t.by_class cls with
    | Some s -> s
    | None ->
      let s = make_stat ?cap:t.cap ~seed:t.seed () in
      Hashtbl.replace t.by_class cls s;
      s
  in
  Prelude.Running_stat.add stat latency

let completed t = t.completed
let shed t = t.shed_queue_full + t.shed_hopeless
let shed_queue_full t = t.shed_queue_full
let shed_hopeless t = t.shed_hopeless
let slo_violations t = t.slo_violations
let latency t = t.latency

let classes t =
  Hashtbl.fold (fun cls stat acc -> (cls, stat) :: acc) t.by_class []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
