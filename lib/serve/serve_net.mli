(** The real executor: compiled network plans behind the
    {!Serve_shard.executor} interface.

    A batch of [n] same-shape requests executes as the network compiled at
    batch [b], where [b] is [n] rounded up to the nearest {e plan size} —
    the geometric ladder [1, 2, 4, ..., max_batch] — so a handful of plans
    covers every batch the batcher can form, at a padding overhead of at
    most 2x on the odd sizes. All plan sizes tune through one (shared,
    domain-safe) {!Swatop.Schedule_cache}, so serving workers and repeated
    runs reuse each other's tuning work.

    [floor_seconds] is the admission controller's provable service-time
    lower bound: for each plan, every step contributes the {e fastest}
    member of its degradation chain (a layer's best implementation or any
    of its fallbacks; a copy's cost), and the bound is the minimum over
    plan sizes — no execution, fallback walk included, can finish a batch
    faster. *)

val plan_sizes : max_batch:int -> int list
(** [1; 2; 4; ...; max_batch] (max_batch included even off the ladder).
    Raises [Invalid_argument] when [max_batch < 1]. *)

val round_up : sizes:int list -> int -> int
(** Smallest plan size [>= n] (the largest size when [n] overshoots). *)

val floor_seconds : Swatop_graph.Graph_compile.plan -> float

type t = {
  nt_name : string;
  nt_plans : (int * Swatop_graph.Graph_compile.plan) list;  (** by batch size, ascending *)
  nt_tune_wall : float;  (** host seconds spent compiling all sizes *)
}

val compile :
  ?cache:Swatop.Schedule_cache.t ->
  ?jobs:int ->
  ?search:Swatop.Tuner.search ->
  gemm_model:Swatop.Gemm_cost.t ->
  graph:(batch:int -> Swatop_graph.Graph_ir.t) ->
  max_batch:int ->
  string ->
  t
(** [compile ~graph ~max_batch name] tunes the network at every plan
    size. *)

val executor : ?retry:Prelude.Retry.policy option -> t -> Serve_shard.executor
(** [ex_run] replays the rounded-up plan through {!Swatop_graph.Graph_exec}
    in cost mode, returning its simulated seconds and its incident counts
    split by recovery kind (retried vs fell back); [ex_nominal] is the
    chosen-implementation sum of the same plan. [retry] defaults to
    [Some Prelude.Retry.default]: transient faults retry on the fast
    path before any fallback chain; pass [None] for pure chain
    degradation. *)
