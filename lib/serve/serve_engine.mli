(** The serving engine: traffic in, a replayable report out.

    Wires the subsystem together inside one {!Serve_sim} event loop:
    {!Serve_trace} arrivals -> {!Serve_admit} admission (bounded queue,
    provable-miss shedding) -> {!Serve_batch} dynamic batching ->
    {!Serve_shard} least-loaded multi-CG dispatch -> completion
    accounting. The executor is abstract ({!Serve_shard.executor}), so the
    same engine drives both real compiled networks ({!Serve_net.executor})
    and the synthetic executors the unit tests use.

    {b Determinism.} Everything in the {!report} except [sr_tune_wall]
    (host wall seconds, reported for humans) is a pure function of the
    executor, the config, and the fault plan: same seed, same config ->
    the same report, whatever the host job count or repetition.
    {!to_json} renders only the deterministic fields, so serialized
    reports diff bit-identically; {!to_text} additionally prints the
    wall-clock line.

    {b Conservation.} Every arrival ends as exactly one of completed or
    shed; [sr_dropped] is the difference and the engine raises
    ({!Prelude.Swatop_error.Error}) if it is ever nonzero — a CG failure
    mid-run drains work to survivors ({!Serve_shard}) rather than losing
    it.

    {b Self-healing.} Per-CG circuit breakers ({!Serve_health}), retry
    absorption of transient executor faults (threaded down to
    {!Swatop_graph.Graph_exec} by {!Serve_net.executor}), per-batch
    watchdogs, and probe-driven re-admission of killed CGs (the
    ["serve.cg.recover"] fault site, bounded by [cf_duration]) all run on
    the same virtual clock, so a chaos scenario replays bit-identically. *)

type config = {
  cf_trace : Serve_trace.kind;
  cf_rate : float;  (** mean arrival rate, requests/s *)
  cf_duration : float;  (** arrival window, seconds (the run drains past it) *)
  cf_cgs : int;  (** core groups serving, 1 .. *)
  cf_slo : float;  (** per-request latency objective, seconds *)
  cf_seed : int;  (** trace randomness root *)
  cf_max_batch : int;
  cf_timeout : float;  (** batching flush timeout, seconds *)
  cf_queue_depth : int;  (** bounded batching-stage queue *)
  cf_health : Serve_health.config;  (** breaker / probe / ramp / watchdog knobs *)
  cf_latency_cap : int;  (** latency-sample retention bound per accumulator *)
}

val default : config
(** Poisson, 200 req/s for 5 s, {!Sw26010.Config.num_cgs} CGs, 50 ms SLO,
    seed 7, max batch 8, 5 ms batching timeout, depth 256,
    {!Serve_health.default}, latency reservoir capped at 8192. *)

type cg_report = {
  cr_id : int;
  cr_alive : bool;
  cr_state : string;  (** breaker state: healthy/suspect/open/probing *)
  cr_batches : int;
  cr_requests : int;
  cr_fallbacks : int;
  cr_retried : int;  (** executor steps absorbed by fast-path retry *)
  cr_busy : float;  (** simulated seconds executing *)
  cr_utilization : float;  (** busy / makespan *)
}

type class_report = {
  cl_class : string;
  cl_count : int;
  cl_mean : float;
  cl_p50 : float;
  cl_p99 : float;
  cl_max : float;  (** latencies in seconds *)
}

type report = {
  sr_name : string;  (** network / executor name *)
  sr_config : config;
  sr_floor : float;  (** provable service-time lower bound used for shedding *)
  sr_arrivals : int;
  sr_completed : int;
  sr_shed : int;
  sr_shed_queue_full : int;
  sr_shed_hopeless : int;
  sr_dropped : int;  (** always 0; see conservation above *)
  sr_slo_violations : int;  (** completed, but later than the SLO *)
  sr_throughput : float;  (** completed / makespan, requests/s *)
  sr_latency_mean : float;
  sr_latency_p50 : float;
  sr_latency_p99 : float;
  sr_latency_max : float;
  sr_classes : class_report list;  (** by class name *)
  sr_batches : int;  (** batches dispatched *)
  sr_batch_hist : (int * int) list;  (** (batch size, count), ascending *)
  sr_cgs : cg_report list;  (** by CG id *)
  sr_kills : Serve_shard.kill list;
  sr_recoveries : Serve_shard.recovery list;  (** probe-driven re-admissions *)
  sr_drained : int;  (** batches re-dispatched off dead CGs *)
  sr_retried : int;  (** executor steps absorbed by fast-path retry *)
  sr_requeues : int;  (** batches requeued after a non-fatal executor failure *)
  sr_probes : int;  (** synthetic recovery probes sent *)
  sr_makespan : float;  (** last completion (>= duration when work drains late) *)
  sr_tune_wall : float;  (** host seconds spent compiling (not in JSON) *)
}

val run : ?tune_wall:float -> executor:Serve_shard.executor -> config -> report
(** Raises [Invalid_argument] on a nonsensical config (validation is
    delegated to the component constructors). *)

val to_text : report -> string
val to_json : report -> string
