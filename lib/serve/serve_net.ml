open Swatop_graph

let plan_sizes ~max_batch =
  if max_batch < 1 then
    invalid_arg (Printf.sprintf "Serve_net.plan_sizes: max_batch must be >= 1, got %d" max_batch);
  let rec ladder b acc = if b >= max_batch then List.rev (max_batch :: acc) else ladder (2 * b) (b :: acc) in
  ladder 1 []

let round_up ~sizes n =
  match List.find_opt (fun s -> s >= n) sizes with
  | Some s -> s
  | None -> (
    match List.rev sizes with
    | largest :: _ -> largest
    | [] -> invalid_arg "Serve_net.round_up: empty size list")

(* Fastest member of a step's degradation chain. The terminal host copy is
   charged the planned copy's own cost: the oracle bridges at main-memory
   speed, never faster than the tuned program it replaces. *)
let step_floor (step : Graph_compile.step) =
  match step with
  | Copy c -> c.cs_seconds
  | Layer { st_impl; st_fallbacks; _ } ->
    List.fold_left
      (fun acc (i : Graph_compile.impl) -> Float.min acc i.im_seconds)
      st_impl.im_seconds st_fallbacks

let floor_seconds (plan : Graph_compile.plan) =
  List.fold_left (fun acc s -> acc +. step_floor s) 0.0 plan.p_steps

(* The plan's own cost estimate: the chosen implementation of every step.
   Matches Graph_exec's fault-free simulated seconds. *)
let nominal_seconds (plan : Graph_compile.plan) =
  List.fold_left
    (fun acc (s : Graph_compile.step) ->
      acc
      +. match s with Copy c -> c.cs_seconds | Layer { st_impl; _ } -> st_impl.im_seconds)
    0.0 plan.p_steps

type t = {
  nt_name : string;
  nt_plans : (int * Graph_compile.plan) list;
  nt_tune_wall : float;
}

let compile ?cache ?jobs ?search ~gemm_model ~graph ~max_batch name =
  let t0 = Unix.gettimeofday () in
  let plans =
    List.map
      (fun b -> (b, Graph_compile.compile ?cache ?jobs ?search ~gemm_model (graph ~batch:b)))
      (plan_sizes ~max_batch)
  in
  { nt_name = name; nt_plans = plans; nt_tune_wall = Unix.gettimeofday () -. t0 }

let executor ?(retry = Some Prelude.Retry.default) t =
  let sizes = List.map fst t.nt_plans in
  let plan_for n = List.assoc (round_up ~sizes n) t.nt_plans in
  {
    Serve_shard.ex_name = t.nt_name;
    ex_floor =
      List.fold_left (fun acc (_, p) -> Float.min acc (floor_seconds p)) infinity t.nt_plans;
    ex_nominal = (fun n -> nominal_seconds (plan_for n));
    ex_run =
      (fun ~cg:_ ~n ->
        let report = Graph_exec.run ?retry (plan_for n) in
        let retried, fell =
          List.fold_left
            (fun (r, f) (i : Graph_exec.incident) ->
              if i.i_recovery = "retried" then (r + 1, f) else (r, f + 1))
            (0, 0) report.r_incidents
        in
        { Serve_shard.ru_seconds = report.r_seconds; ru_fallbacks = fell; ru_retried = retried });
  }
