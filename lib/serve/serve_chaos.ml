let site = "chaos.plan"

(* Scenario kinds cycle so even a small soak covers every fault family;
   the parameters inside each plan are seeded draws. Triggers stick to
   [n=] / [every=] — exact hit counts — so a plan's schedule is a pure
   function of (seed, index) regardless of how hits interleave.
   [every] periods stay >= 5: a transient's retry attempt is the next
   hit at the same site, which must not fault again or the transient
   stops being transient. *)
let plan_for ~seed i =
  let pick tag n = Prelude.Det_rng.int ~seed ~site ~k:(Prelude.Det_rng.mix i tag) n in
  let kill_batch = 1 + pick 1 4 in
  let recover_probe = 1 + pick 2 3 in
  let dma_hit = 1 + pick 3 40 in
  let layer_period = 5 + pick 4 20 in
  let hang_batch = 1 + pick 5 4 in
  match i mod 6 with
  | 0 -> ("kill", Printf.sprintf "seed=%d;serve.cg:n=%d" seed kill_batch)
  | 1 ->
    ( "kill-recover",
      Printf.sprintf "seed=%d;serve.cg:n=%d;serve.cg.recover:n=%d" seed kill_batch recover_probe
    )
  | 2 -> ("dma-transient", Printf.sprintf "seed=%d;interp.dma.issue:n=%d" seed dma_hit)
  | 3 -> ("layer-transient", Printf.sprintf "seed=%d;graph.layer:every=%d" seed layer_period)
  | 4 -> ("hang", Printf.sprintf "seed=%d;serve.cg.hang:n=%d" seed hang_batch)
  | _ ->
    ( "mixed",
      Printf.sprintf "seed=%d;serve.cg:n=%d;serve.cg.recover:n=%d;graph.layer:every=%d" seed
        kill_batch recover_probe layer_period )

type scenario = {
  sc_index : int;
  sc_kind : string;
  sc_plan : string;
  sc_arrivals : int;
  sc_completed : int;
  sc_shed : int;
  sc_dropped : int;
  sc_kills : int;
  sc_recoveries : int;
  sc_retried : int;
  sc_fallbacks : int;
  sc_requeues : int;
  sc_probes : int;
  sc_throughput : float;
  sc_p99 : float;
  sc_conserved : bool;
  sc_throughput_ratio : float;
  sc_p99_ratio : float;
}

type report = {
  ch_name : string;
  ch_plans : int;
  ch_seed : int;
  ch_baseline_throughput : float;
  ch_baseline_p99 : float;
  ch_scenarios : scenario list;
  ch_all_conserved : bool;
  ch_total_kills : int;
  ch_total_recoveries : int;
  ch_total_retried : int;
  ch_total_requeues : int;
  ch_max_p99_ratio : float;
  ch_min_recovered_throughput_ratio : float;
}

let ratio ~base x = if base > 0.0 then x /. base else 1.0

let run ?(plans = 20) ?seed ~executor (cf : Serve_engine.config) =
  if plans < 1 then
    invalid_arg (Printf.sprintf "Serve_chaos.run: plans must be >= 1, got %d" plans);
  let seed = Option.value seed ~default:cf.Serve_engine.cf_seed in
  let saved = Prelude.Fault.plan () in
  Fun.protect
    ~finally:(fun () -> Prelude.Fault.set saved)
    (fun () ->
      Prelude.Fault.set None;
      let baseline = Serve_engine.run ~executor cf in
      let base_tp = baseline.Serve_engine.sr_throughput in
      let base_p99 = baseline.Serve_engine.sr_latency_p99 in
      let scenarios =
        List.init plans (fun i ->
            let kind, spec = plan_for ~seed i in
            let plan =
              match Prelude.Fault.parse spec with
              | Ok p -> p
              | Error e ->
                invalid_arg (Printf.sprintf "Serve_chaos: generated bad plan %S: %s" spec e)
            in
            Prelude.Fault.set (Some plan);
            (* Every scenario replays the baseline trace (same seed): the
               throughput/p99 ratios then measure the fault's effect alone,
               not Poisson sampling noise across different traces. *)
            let r = Serve_engine.run ~executor cf in
            Prelude.Fault.set None;
            let fallbacks =
              List.fold_left
                (fun acc (c : Serve_engine.cg_report) -> acc + c.cr_fallbacks)
                0 r.Serve_engine.sr_cgs
            in
            {
              sc_index = i;
              sc_kind = kind;
              sc_plan = spec;
              sc_arrivals = r.sr_arrivals;
              sc_completed = r.sr_completed;
              sc_shed = r.sr_shed;
              sc_dropped = r.sr_dropped;
              sc_kills = List.length r.sr_kills;
              sc_recoveries = List.length r.sr_recoveries;
              sc_retried = r.sr_retried;
              sc_fallbacks = fallbacks;
              sc_requeues = r.sr_requeues;
              sc_probes = r.sr_probes;
              sc_throughput = r.sr_throughput;
              sc_p99 = r.sr_latency_p99;
              sc_conserved =
                r.sr_dropped = 0 && r.sr_arrivals = r.sr_completed + r.sr_shed;
              sc_throughput_ratio = ratio ~base:base_tp r.sr_throughput;
              sc_p99_ratio = ratio ~base:base_p99 r.sr_latency_p99;
            })
      in
      let recovered = List.filter (fun s -> s.sc_recoveries > 0) scenarios in
      {
        ch_name = executor.Serve_shard.ex_name;
        ch_plans = plans;
        ch_seed = seed;
        ch_baseline_throughput = base_tp;
        ch_baseline_p99 = base_p99;
        ch_scenarios = scenarios;
        ch_all_conserved = List.for_all (fun s -> s.sc_conserved) scenarios;
        ch_total_kills = List.fold_left (fun a s -> a + s.sc_kills) 0 scenarios;
        ch_total_recoveries = List.fold_left (fun a s -> a + s.sc_recoveries) 0 scenarios;
        ch_total_retried = List.fold_left (fun a s -> a + s.sc_retried) 0 scenarios;
        ch_total_requeues = List.fold_left (fun a s -> a + s.sc_requeues) 0 scenarios;
        ch_max_p99_ratio =
          List.fold_left (fun a s -> Float.max a s.sc_p99_ratio) 0.0 scenarios;
        ch_min_recovered_throughput_ratio =
          (match recovered with
          | [] -> 1.0
          | _ ->
            List.fold_left (fun a s -> Float.min a s.sc_throughput_ratio) infinity recovered);
      })

let check ?(min_recovered_ratio = 0.95) ?(max_p99_ratio = 10.0) r =
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  List.iter
    (fun s ->
      if not s.sc_conserved then
        fail "scenario %d (%s): conservation violated: %d arrived, %d completed, %d shed"
          s.sc_index s.sc_kind s.sc_arrivals s.sc_completed s.sc_shed;
      if s.sc_dropped <> 0 then
        fail "scenario %d (%s): %d requests dropped" s.sc_index s.sc_kind s.sc_dropped;
      if s.sc_recoveries > 0 && s.sc_throughput_ratio < min_recovered_ratio then
        fail "scenario %d (%s): recovered throughput %.3f < %.3f of baseline" s.sc_index
          s.sc_kind s.sc_throughput_ratio min_recovered_ratio;
      if s.sc_p99_ratio > max_p99_ratio then
        fail "scenario %d (%s): p99 inflated %.2fx > %.2fx bound" s.sc_index s.sc_kind
          s.sc_p99_ratio max_p99_ratio)
    r.ch_scenarios;
  List.rev !failures

(* ------------------------------------------------------------------ *)
(* Rendering. *)

let to_text r =
  let b = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "chaos soak %s: %d plans, seed %d\n" r.ch_name r.ch_plans r.ch_seed;
  add "  baseline: %.1f req/s | p99 %.3f ms\n" r.ch_baseline_throughput
    (r.ch_baseline_p99 *. 1e3);
  List.iter
    (fun s ->
      add
        "  #%02d %-15s %-45s | %4d/%4d/%3d a/c/s | %dk %dr %dre %df %drq | tp %.2fx p99 %.2fx%s\n"
        s.sc_index s.sc_kind s.sc_plan s.sc_arrivals s.sc_completed s.sc_shed s.sc_kills
        s.sc_recoveries s.sc_retried s.sc_fallbacks s.sc_requeues s.sc_throughput_ratio
        s.sc_p99_ratio
        (if s.sc_conserved then "" else " | NOT CONSERVED"))
    r.ch_scenarios;
  add "  totals: %d kills, %d recoveries, %d retried, %d requeued\n" r.ch_total_kills
    r.ch_total_recoveries r.ch_total_retried r.ch_total_requeues;
  add "  conserved: %s | max p99 inflation %.2fx | min recovered throughput %.3fx\n"
    (if r.ch_all_conserved then "all" else "VIOLATED")
    r.ch_max_p99_ratio r.ch_min_recovered_throughput_ratio;
  Buffer.contents b

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Deterministic: no wall-clock fields, so a soak's JSON replays
   byte-identically at any job count. *)
let to_json r =
  let b = Buffer.create 2048 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "{\n";
  add "  \"network\": \"%s\",\n" (json_escape r.ch_name);
  add "  \"plans\": %d,\n" r.ch_plans;
  add "  \"seed\": %d,\n" r.ch_seed;
  add "  \"baseline_throughput_rps\": %.9g,\n" r.ch_baseline_throughput;
  add "  \"baseline_p99_ms\": %.9g,\n" (r.ch_baseline_p99 *. 1e3);
  add "  \"scenarios\": [\n";
  let n = List.length r.ch_scenarios in
  List.iteri
    (fun idx s ->
      add
        "    {\"index\": %d, \"kind\": \"%s\", \"plan\": \"%s\", \"arrivals\": %d, \
         \"completed\": %d, \"shed\": %d, \"dropped\": %d, \"kills\": %d, \"recoveries\": %d, \
         \"retried\": %d, \"fallbacks\": %d, \"requeues\": %d, \"probes\": %d, \
         \"throughput_rps\": %.9g, \"p99_ms\": %.9g, \"conserved\": %b, \
         \"throughput_ratio\": %.9g, \"p99_ratio\": %.9g}%s\n"
        s.sc_index (json_escape s.sc_kind) (json_escape s.sc_plan) s.sc_arrivals s.sc_completed
        s.sc_shed s.sc_dropped s.sc_kills s.sc_recoveries s.sc_retried s.sc_fallbacks
        s.sc_requeues s.sc_probes s.sc_throughput (s.sc_p99 *. 1e3) s.sc_conserved
        s.sc_throughput_ratio s.sc_p99_ratio
        (if idx < n - 1 then "," else ""))
    r.ch_scenarios;
  add "  ],\n";
  add "  \"all_conserved\": %b,\n" r.ch_all_conserved;
  add "  \"total_kills\": %d,\n" r.ch_total_kills;
  add "  \"total_recoveries\": %d,\n" r.ch_total_recoveries;
  add "  \"total_retried\": %d,\n" r.ch_total_retried;
  add "  \"total_requeues\": %d,\n" r.ch_total_requeues;
  add "  \"max_p99_ratio\": %.9g,\n" r.ch_max_p99_ratio;
  add "  \"min_recovered_throughput_ratio\": %.9g\n" r.ch_min_recovered_throughput_ratio;
  add "}";
  Buffer.contents b
