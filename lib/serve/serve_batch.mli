(** Shape-bucketed dynamic batching.

    Requests for the same network and input shape land in the same bucket
    (keyed by {!request.rq_bucket}) and coalesce into one batched
    execution — the graph runtime already treats batch as a leading
    dimension ({!Swatop_graph.Graph_ir.t.batch}), so a batch of [n]
    same-shape requests is simply the [n]-batch compiled plan.

    Policy per bucket, the classic two-trigger rule:
    - {b size}: the moment a bucket holds [max_batch] requests, a full
      batch is released immediately;
    - {b time}: otherwise a flush timer armed at the {e oldest} queued
      request's arrival [+ timeout] releases whatever the bucket holds, so
      a lone request never waits more than [timeout] for company.

    Within a bucket the order is strictly FIFO: batches are cut from the
    front of the queue in arrival order. The module is pure bookkeeping —
    it never touches the clock; callers pass [now] in and arm returned
    timers on their own {!Serve_sim} loop. *)

type request = {
  rq_id : int;  (** arrival index, unique per run *)
  rq_class : string;  (** traffic class, for per-class latency stats *)
  rq_bucket : string;  (** batching key: network + input shape *)
  rq_arrival : float;
  rq_deadline : float;  (** arrival + SLO *)
}

type t

val create : max_batch:int -> timeout:float -> unit -> t
(** Raises [Invalid_argument] when [max_batch < 1] or [timeout <= 0]. *)

val queued : t -> int
(** Requests currently waiting across all buckets. *)

val add : t -> request -> request list list * float option
(** Enqueue a request in its bucket. Returns [(ready, timer)]: [ready] is
    the full batches released by the size trigger (each exactly
    [max_batch] long, FIFO), and [timer] is [Some time] when the caller
    must arm a flush timer for this bucket at [time] (no timer is
    currently armed and requests remain queued). Fire it by calling
    {!on_timer} with the request's bucket. *)

val on_timer : t -> now:float -> bucket:string -> request list list * float option
(** The bucket's flush timer fired. If the oldest queued request has
    waited [timeout], releases {e everything} the bucket holds, cut into
    FIFO batches of at most [max_batch]. If the bucket is empty (a size
    trigger beat the timer) or the head arrived after the timer was armed,
    releases nothing; the second case returns [Some time] to re-arm. *)
