type request = {
  rq_id : int;
  rq_class : string;
  rq_bucket : string;
  rq_arrival : float;
  rq_deadline : float;
}

type bucket = {
  queue : request Queue.t;
  mutable timer_armed : bool;
}

type t = {
  max_batch : int;
  timeout : float;
  buckets : (string, bucket) Hashtbl.t;
  mutable queued : int;
}

let create ~max_batch ~timeout () =
  if max_batch < 1 then
    invalid_arg (Printf.sprintf "Serve_batch.create: max_batch must be >= 1, got %d" max_batch);
  if timeout <= 0.0 || not (Float.is_finite timeout) then
    invalid_arg (Printf.sprintf "Serve_batch.create: timeout must be positive, got %g" timeout);
  { max_batch; timeout; buckets = Hashtbl.create 8; queued = 0 }

let queued t = t.queued

let bucket t key =
  match Hashtbl.find_opt t.buckets key with
  | Some b -> b
  | None ->
    let b = { queue = Queue.create (); timer_armed = false } in
    Hashtbl.replace t.buckets key b;
    b

(* Cut one batch of at most [n] from the front of the queue. *)
let take t b n =
  let rec go k acc =
    if k = 0 then List.rev acc
    else
      match Queue.take_opt b.queue with
      | None -> List.rev acc
      | Some r ->
        t.queued <- t.queued - 1;
        go (k - 1) (r :: acc)
  in
  go n []

(* The flush deadline tracks the *oldest remaining* request; Queue.peek is
   that request because buckets are strictly FIFO. *)
let arm t b =
  if (not b.timer_armed) && not (Queue.is_empty b.queue) then begin
    b.timer_armed <- true;
    Some ((Queue.peek b.queue).rq_arrival +. t.timeout)
  end
  else None

let add t r =
  let b = bucket t r.rq_bucket in
  Queue.add r b.queue;
  t.queued <- t.queued + 1;
  let ready = ref [] in
  while Queue.length b.queue >= t.max_batch do
    ready := take t b t.max_batch :: !ready
  done;
  (List.rev !ready, arm t b)

let on_timer t ~now ~bucket:key =
  match Hashtbl.find_opt t.buckets key with
  | None -> ([], None)
  | Some b ->
    b.timer_armed <- false;
    if Queue.is_empty b.queue then ([], None)
    else if (Queue.peek b.queue).rq_arrival +. t.timeout <= now +. 1e-12 then begin
      (* Everything present has been waiting at least as long as the timer:
         drain the whole bucket in FIFO chunks. *)
      let ready = ref [] in
      while not (Queue.is_empty b.queue) do
        ready := take t b t.max_batch :: !ready
      done;
      (List.rev !ready, None)
    end
    else
      (* The head arrived after this timer was armed (a size trigger
         emptied the bucket in between): its own timeout is still running. *)
      ([], arm t b)
