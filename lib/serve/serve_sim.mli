(** Discrete-event simulator core: a virtual clock and an event queue.

    The serving subsystem is measured in {e simulated} time — the same
    currency as the SW26010 interpreter's per-kernel seconds — so a run is
    a pure computation: schedule thunks at virtual times, then {!run}
    drains them in order while advancing {!now}. Determinism rules:

    - events fire in (time, insertion order) — two events at the same
      instant fire in the order they were scheduled, never by float
      tie-breaking luck;
    - the loop is sequential (one domain), so handler side effects are
      ordered; host parallelism lives only {e below} a handler (e.g.
      compile-time tuning), never across handlers.

    Consequently a serving run is bit-identical across repetitions and
    across [--jobs] settings, which is what makes latency regressions
    diffable at a tight noise bound. *)

type t

val create : unit -> t

val now : t -> float
(** Virtual seconds since {!create}; [0.0] before the first event. *)

val at : t -> float -> (unit -> unit) -> unit
(** [at t time fn] schedules [fn] to fire at [time]. A [time] in the past
    (scheduled from inside a handler) is clamped to {!now}: it fires after
    the events already queued at {!now}. *)

val pending : t -> int

val run : t -> unit
(** Drain the queue to exhaustion, advancing {!now} to each event's time.
    Handlers may schedule further events. *)
