(* Events keyed by (time, insertion sequence): the map's total order gives
   both the time ordering and the same-instant FIFO guarantee. *)
module Key = struct
  type t = float * int

  let compare (ta, sa) (tb, sb) =
    match Float.compare ta tb with 0 -> Int.compare sa sb | c -> c
end

module Events = Map.Make (Key)

type t = {
  mutable now : float;
  mutable seq : int;
  mutable events : (unit -> unit) Events.t;
}

let create () = { now = 0.0; seq = 0; events = Events.empty }
let now t = t.now

let at t time fn =
  if not (Float.is_finite time) then
    invalid_arg (Printf.sprintf "Serve_sim.at: non-finite time %g" time);
  let time = Float.max time t.now in
  t.events <- Events.add (time, t.seq) fn t.events;
  t.seq <- t.seq + 1

let pending t = Events.cardinal t.events

let run t =
  let rec loop () =
    match Events.min_binding_opt t.events with
    | None -> ()
    | Some (((time, _) as key), fn) ->
      t.events <- Events.remove key t.events;
      t.now <- time;
      fn ();
      loop ()
  in
  loop ()
