(** SLO-aware admission control and latency accounting.

    Two gates, both {e provable} — a request is never turned away on a
    heuristic:

    - {b bounded queue}: an arrival finding [queue_depth] requests already
      waiting in the batching stage is shed ([Queue_full]) — the queue can
      not grow without bound under overload;
    - {b deadline shedding}: a request is shed ([Hopeless]) only when its
      deadline is {e provably} missed — [now + floor > deadline], where
      [floor] is a static lower bound on service time (the sum over the
      plan's steps of the fastest implementation in each step's fallback
      chain, see {!Serve_net.floor_seconds}). If even the fastest
      conceivable execution started this instant would finish late, doing
      the work wastes capacity that punctual requests need; otherwise the
      request runs, even if it will {e probably} be late (recorded as an
      SLO violation on completion, never dropped).

    The accountant side tallies sheds by reason, completions, SLO
    violations, and per-class + overall latency through
    {!Prelude.Running_stat}. By default every latency is retained and the
    percentiles are exact; with [?cap] each accumulator becomes a seeded
    bounded reservoir (deterministic, replayable) so a long soak's memory
    stays constant — mean/min/max/counts remain exact either way. Every
    request ends in exactly one bucket — completed or shed — so
    [arrivals = completed + shed] is an invariant the engine checks;
    "dropped" is not an outcome this module can express. *)

type shed_reason = Queue_full | Hopeless

val shed_reason_to_string : shed_reason -> string

type t

val create : ?cap:int -> ?seed:int -> queue_depth:int -> slo:float -> floor:float -> unit -> t
(** [slo] and [floor] in seconds. [cap] bounds latency-sample retention
    per accumulator (default: retain everything, exact percentiles);
    [seed] (default 7) roots the reservoir's replacement draws. Raises
    [Invalid_argument] when [queue_depth < 1], [slo <= 0], [floor < 0]
    or [cap < 1]. *)

val floor : t -> float

val admit : t -> now:float -> queued:int -> (float, shed_reason) result
(** Admission decision for a request arriving at [now] with [queued]
    requests already in the batching stage. [Ok deadline] admits with
    [deadline = now + slo]; [Error reason] records the shed. *)

val viable : t -> now:float -> deadline:float -> bool
(** Dispatch-time recheck: [false] means the deadline is now provably
    missed ([now + floor > deadline]) and {e records a [Hopeless] shed} —
    call it once per request, at the moment it would start. *)

val complete : t -> cls:string -> latency:float -> unit
(** Record a completion (latency in seconds; counts an SLO violation when
    it exceeds the SLO). *)

val completed : t -> int
val shed : t -> int
val shed_queue_full : t -> int
val shed_hopeless : t -> int
val slo_violations : t -> int

val latency : t -> Prelude.Running_stat.t
(** All completions, one accumulator. *)

val classes : t -> (string * Prelude.Running_stat.t) list
(** Per-class completion latency, sorted by class name. *)
