type config = {
  cf_trace : Serve_trace.kind;
  cf_rate : float;
  cf_duration : float;
  cf_cgs : int;
  cf_slo : float;
  cf_seed : int;
  cf_max_batch : int;
  cf_timeout : float;
  cf_queue_depth : int;
  cf_health : Serve_health.config;
  cf_latency_cap : int;
}

let default =
  {
    cf_trace = Serve_trace.Poisson;
    cf_rate = 200.0;
    cf_duration = 5.0;
    cf_cgs = Sw26010.Config.num_cgs;
    cf_slo = 0.050;
    cf_seed = 7;
    cf_max_batch = 8;
    cf_timeout = 0.005;
    cf_queue_depth = 256;
    cf_health = Serve_health.default;
    cf_latency_cap = 8192;
  }

type cg_report = {
  cr_id : int;
  cr_alive : bool;
  cr_state : string;
  cr_batches : int;
  cr_requests : int;
  cr_fallbacks : int;
  cr_retried : int;
  cr_busy : float;
  cr_utilization : float;
}

type class_report = {
  cl_class : string;
  cl_count : int;
  cl_mean : float;
  cl_p50 : float;
  cl_p99 : float;
  cl_max : float;
}

type report = {
  sr_name : string;
  sr_config : config;
  sr_floor : float;
  sr_arrivals : int;
  sr_completed : int;
  sr_shed : int;
  sr_shed_queue_full : int;
  sr_shed_hopeless : int;
  sr_dropped : int;
  sr_slo_violations : int;
  sr_throughput : float;
  sr_latency_mean : float;
  sr_latency_p50 : float;
  sr_latency_p99 : float;
  sr_latency_max : float;
  sr_classes : class_report list;
  sr_batches : int;
  sr_batch_hist : (int * int) list;
  sr_cgs : cg_report list;
  sr_kills : Serve_shard.kill list;
  sr_recoveries : Serve_shard.recovery list;
  sr_drained : int;
  sr_retried : int;
  sr_requeues : int;
  sr_probes : int;
  sr_makespan : float;
  sr_tune_wall : float;
}

let run ?(tune_wall = 0.0) ~executor cf =
  let arrivals =
    Serve_trace.generate cf.cf_trace ~rate:cf.cf_rate ~duration:cf.cf_duration ~seed:cf.cf_seed
  in
  let sim = Serve_sim.create () in
  let batcher = Serve_batch.create ~max_batch:cf.cf_max_batch ~timeout:cf.cf_timeout () in
  let admit =
    Serve_admit.create ~cap:cf.cf_latency_cap ~seed:cf.cf_seed ~queue_depth:cf.cf_queue_depth
      ~slo:cf.cf_slo ~floor:executor.Serve_shard.ex_floor ()
  in
  let last_completion = ref 0.0 in
  let shard =
    Serve_shard.create ~health:cf.cf_health ~horizon:cf.cf_duration ~sim ~executor ~cgs:cf.cf_cgs
      ~on_complete:(fun reqs ~finished ~cg:_ ->
        last_completion := Float.max !last_completion finished;
        List.iter
          (fun (r : Serve_batch.request) ->
            Serve_admit.complete admit ~cls:r.rq_class ~latency:(finished -. r.rq_arrival))
          reqs)
      ()
  in
  let hist : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let batches = ref 0 in
  (* Dispatch-time recheck: requests whose deadline is already provably
     missed are shed here; the rest go to a CG as one (possibly shrunken)
     batch. *)
  let dispatch reqs =
    let viable =
      List.filter
        (fun (r : Serve_batch.request) ->
          Serve_admit.viable admit ~now:(Serve_sim.now sim) ~deadline:r.rq_deadline)
        reqs
    in
    match viable with
    | [] -> ()
    | reqs ->
      let n = List.length reqs in
      Hashtbl.replace hist n (1 + Option.value ~default:0 (Hashtbl.find_opt hist n));
      incr batches;
      Serve_shard.submit shard reqs
  in
  (* Flush timers re-arm themselves while their bucket has a fresher head. *)
  let rec on_timer bucket () =
    let ready, rearm = Serve_batch.on_timer batcher ~now:(Serve_sim.now sim) ~bucket in
    List.iter dispatch ready;
    Option.iter (fun tfire -> Serve_sim.at sim tfire (on_timer bucket)) rearm
  in
  (* One bucket per served network: the engine serves a single executor, so
     every request shares its shape. (Serve_batch itself is multi-bucket;
     a multi-model engine would derive the key from the request.) *)
  let bucket = executor.Serve_shard.ex_name in
  let arrive id (a : Serve_trace.arrival) () =
    let now = Serve_sim.now sim in
    match Serve_admit.admit admit ~now ~queued:(Serve_batch.queued batcher) with
    | Error _ -> ()
    | Ok deadline ->
      let r =
        {
          Serve_batch.rq_id = id;
          rq_class = a.ar_class;
          rq_bucket = bucket;
          rq_arrival = now;
          rq_deadline = deadline;
        }
      in
      let ready, timer = Serve_batch.add batcher r in
      List.iter dispatch ready;
      Option.iter (fun tfire -> Serve_sim.at sim tfire (on_timer bucket)) timer
  in
  List.iteri (fun id a -> Serve_sim.at sim a.Serve_trace.ar_time (arrive id a)) arrivals;
  Serve_sim.run sim;
  let arrivals_n = List.length arrivals in
  let completed = Serve_admit.completed admit in
  let shed = Serve_admit.shed admit in
  let dropped = arrivals_n - completed - shed in
  if dropped <> 0 then
    Prelude.Swatop_error.error ~site:"Serve_engine.run"
      ~context:
        [
          ("arrivals", string_of_int arrivals_n);
          ("completed", string_of_int completed);
          ("shed", string_of_int shed);
        ]
      "request conservation violated: some requests neither completed nor shed";
  let makespan = Float.max cf.cf_duration !last_completion in
  let lat = Serve_admit.latency admit in
  let classes =
    List.map
      (fun (cls, s) ->
        {
          cl_class = cls;
          cl_count = Prelude.Running_stat.count s;
          cl_mean = Prelude.Running_stat.mean s;
          cl_p50 = Prelude.Running_stat.percentile s 50.0;
          cl_p99 = Prelude.Running_stat.percentile s 99.0;
          cl_max = Prelude.Running_stat.max s;
        })
      (Serve_admit.classes admit)
  in
  let kills = Serve_shard.kills shard in
  {
    sr_name = executor.Serve_shard.ex_name;
    sr_config = cf;
    sr_floor = executor.Serve_shard.ex_floor;
    sr_arrivals = arrivals_n;
    sr_completed = completed;
    sr_shed = shed;
    sr_shed_queue_full = Serve_admit.shed_queue_full admit;
    sr_shed_hopeless = Serve_admit.shed_hopeless admit;
    sr_dropped = dropped;
    sr_slo_violations = Serve_admit.slo_violations admit;
    sr_throughput = (if completed = 0 then 0.0 else float_of_int completed /. makespan);
    sr_latency_mean = Prelude.Running_stat.mean lat;
    sr_latency_p50 = Prelude.Running_stat.percentile lat 50.0;
    sr_latency_p99 = Prelude.Running_stat.percentile lat 99.0;
    sr_latency_max = Prelude.Running_stat.max lat;
    sr_classes = classes;
    sr_batches = !batches;
    sr_batch_hist =
      Hashtbl.fold (fun n c acc -> (n, c) :: acc) hist []
      |> List.sort (fun (a, _) (b, _) -> Int.compare a b);
    sr_cgs =
      List.map
        (fun (s : Serve_shard.cg_stat) ->
          {
            cr_id = s.g_id;
            cr_alive = s.g_alive;
            cr_state = s.g_state;
            cr_batches = s.g_batches;
            cr_requests = s.g_requests;
            cr_fallbacks = s.g_fallbacks;
            cr_retried = s.g_retried;
            cr_busy = s.g_busy;
            cr_utilization = s.g_busy /. makespan;
          })
        (Serve_shard.stats shard);
    sr_kills = kills;
    sr_recoveries = Serve_shard.recoveries shard;
    sr_drained = List.fold_left (fun acc (k : Serve_shard.kill) -> acc + k.k_drained) 0 kills;
    sr_retried =
      List.fold_left (fun acc (s : Serve_shard.cg_stat) -> acc + s.g_retried) 0
        (Serve_shard.stats shard);
    sr_requeues = Serve_shard.requeues shard;
    sr_probes = Serve_shard.probes shard;
    sr_makespan = makespan;
    sr_tune_wall = tune_wall;
  }

(* ------------------------------------------------------------------ *)
(* Rendering. *)

let ms s = s *. 1e3

let to_text r =
  let b = Buffer.create 1024 in
  let cf = r.sr_config in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "serving %s: %s %.0f req/s for %.1f s | %d CGs | SLO %.1f ms | seed %d\n" r.sr_name
    (Serve_trace.kind_to_string cf.cf_trace)
    cf.cf_rate cf.cf_duration cf.cf_cgs (ms cf.cf_slo) cf.cf_seed;
  add "  batching: max %d, timeout %.1f ms | queue depth %d | service floor %.3f ms\n"
    cf.cf_max_batch (ms cf.cf_timeout) cf.cf_queue_depth (ms r.sr_floor);
  add "  requests: %d arrived, %d completed, %d shed (%d queue-full, %d hopeless), %d dropped\n"
    r.sr_arrivals r.sr_completed r.sr_shed r.sr_shed_queue_full r.sr_shed_hopeless r.sr_dropped;
  add "  throughput: %.1f req/s sustained over %.3f s makespan\n" r.sr_throughput r.sr_makespan;
  add "  latency: mean %.3f ms | p50 %.3f ms | p99 %.3f ms | max %.3f ms | %d SLO violations\n"
    (ms r.sr_latency_mean) (ms r.sr_latency_p50) (ms r.sr_latency_p99) (ms r.sr_latency_max)
    r.sr_slo_violations;
  List.iter
    (fun c ->
      add "    class %-8s: %6d done | p50 %.3f ms | p99 %.3f ms\n" c.cl_class c.cl_count
        (ms c.cl_p50) (ms c.cl_p99))
    r.sr_classes;
  add "  batches: %d dispatched | sizes %s\n" r.sr_batches
    (String.concat ", "
       (List.map (fun (n, c) -> Printf.sprintf "%dx%d" n c) r.sr_batch_hist));
  List.iter
    (fun c ->
      add "    cg%d: %s (%s) | %5d batches | %6d requests | util %5.1f%%%s%s\n" c.cr_id
        (if c.cr_alive then "alive" else "DEAD ")
        c.cr_state c.cr_batches c.cr_requests
        (100.0 *. c.cr_utilization)
        (if c.cr_retried > 0 then Printf.sprintf " | %d retried" c.cr_retried else "")
        (if c.cr_fallbacks > 0 then Printf.sprintf " | %d fallbacks" c.cr_fallbacks else ""))
    r.sr_cgs;
  List.iter
    (fun (k : Serve_shard.kill) ->
      add "  incident: cg%d died at %.3f s (%s); %d batches drained to survivors\n" k.k_cg k.k_time
        k.k_cause k.k_drained)
    r.sr_kills;
  List.iter
    (fun (rv : Serve_shard.recovery) ->
      add "  recovery: cg%d re-admitted at %.3f s after %d probes\n" rv.rv_cg rv.rv_time
        rv.rv_probes)
    r.sr_recoveries;
  if r.sr_probes > 0 || r.sr_requeues > 0 || r.sr_retried > 0 then
    add "  resilience: %d retried | %d requeued | %d probes sent\n" r.sr_retried r.sr_requeues
      r.sr_probes;
  if r.sr_tune_wall > 0.0 then add "  tuning wall: %.2f s\n" r.sr_tune_wall;
  Buffer.contents b

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Only deterministic fields: no host wall time, so two runs of the same
   seed/config/fault-plan produce byte-identical JSON. *)
let to_json r =
  let b = Buffer.create 2048 in
  let cf = r.sr_config in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "{\n";
  add "  \"network\": \"%s\",\n" (json_escape r.sr_name);
  add "  \"trace\": \"%s\",\n" (Serve_trace.kind_to_string cf.cf_trace);
  add "  \"rate\": %.9g,\n" cf.cf_rate;
  add "  \"duration_seconds\": %.9g,\n" cf.cf_duration;
  add "  \"cgs\": %d,\n" cf.cf_cgs;
  add "  \"slo_ms\": %.9g,\n" (ms cf.cf_slo);
  add "  \"seed\": %d,\n" cf.cf_seed;
  add "  \"max_batch\": %d,\n" cf.cf_max_batch;
  add "  \"batch_timeout_ms\": %.9g,\n" (ms cf.cf_timeout);
  add "  \"queue_depth\": %d,\n" cf.cf_queue_depth;
  add "  \"floor_ms\": %.9g,\n" (ms r.sr_floor);
  add "  \"arrivals\": %d,\n" r.sr_arrivals;
  add "  \"completed\": %d,\n" r.sr_completed;
  add "  \"shed\": %d,\n" r.sr_shed;
  add "  \"shed_queue_full\": %d,\n" r.sr_shed_queue_full;
  add "  \"shed_hopeless\": %d,\n" r.sr_shed_hopeless;
  add "  \"dropped\": %d,\n" r.sr_dropped;
  add "  \"slo_violations\": %d,\n" r.sr_slo_violations;
  add "  \"throughput_rps\": %.9g,\n" r.sr_throughput;
  add "  \"latency_ms\": {\"mean\": %.9g, \"p50\": %.9g, \"p99\": %.9g, \"max\": %.9g},\n"
    (ms r.sr_latency_mean) (ms r.sr_latency_p50) (ms r.sr_latency_p99) (ms r.sr_latency_max);
  add "  \"classes\": [%s],\n"
    (String.concat ", "
       (List.map
          (fun c ->
            Printf.sprintf
              "{\"class\": \"%s\", \"count\": %d, \"p50_ms\": %.9g, \"p99_ms\": %.9g}"
              (json_escape c.cl_class) c.cl_count (ms c.cl_p50) (ms c.cl_p99))
          r.sr_classes));
  add "  \"batches\": %d,\n" r.sr_batches;
  add "  \"batch_histogram\": [%s],\n"
    (String.concat ", "
       (List.map (fun (n, c) -> Printf.sprintf "{\"size\": %d, \"count\": %d}" n c) r.sr_batch_hist));
  add "  \"cgs_detail\": [\n";
  let ncg = List.length r.sr_cgs in
  List.iteri
    (fun i c ->
      add
        "    {\"cg\": %d, \"alive\": %b, \"state\": \"%s\", \"batches\": %d, \"requests\": %d, \
         \"fallbacks\": %d, \"retried\": %d, \"busy_seconds\": %.9g, \"utilization\": %.9g}%s\n"
        c.cr_id c.cr_alive (json_escape c.cr_state) c.cr_batches c.cr_requests c.cr_fallbacks
        c.cr_retried c.cr_busy c.cr_utilization
        (if i < ncg - 1 then "," else ""))
    r.sr_cgs;
  add "  ],\n";
  add "  \"kills\": [%s],\n"
    (String.concat ", "
       (List.map
          (fun (k : Serve_shard.kill) ->
            Printf.sprintf
              "{\"cg\": %d, \"time_seconds\": %.9g, \"cause\": \"%s\", \"drained_batches\": %d}"
              k.k_cg k.k_time (json_escape k.k_cause) k.k_drained)
          r.sr_kills));
  add "  \"recoveries\": [%s],\n"
    (String.concat ", "
       (List.map
          (fun (rv : Serve_shard.recovery) ->
            Printf.sprintf "{\"cg\": %d, \"time_seconds\": %.9g, \"probes\": %d}" rv.rv_cg
              rv.rv_time rv.rv_probes)
          r.sr_recoveries));
  add "  \"drained_batches\": %d,\n" r.sr_drained;
  add "  \"retried\": %d,\n" r.sr_retried;
  add "  \"requeues\": %d,\n" r.sr_requeues;
  add "  \"probes\": %d,\n" r.sr_probes;
  add "  \"makespan_seconds\": %.9g\n" r.sr_makespan;
  add "}";
  Buffer.contents b
